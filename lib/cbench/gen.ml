(** Deterministic synthetic C benchmark generator.

    The paper's benchmarks (Table 1) are real 1990s C packages we cannot
    ship; this generator emits well-formed mini-C programs with the same
    statistical shape, so the Table 2 / Figure 6 experiment exercises the
    same constraint-graph structure (see DESIGN.md, Substitutions):

    - string/buffer utility functions taking pointer parameters;
    - a fraction of read-only pointer parameters annotated [const] ("we
      purposely selected programs that show a significant effort to use
      const");
    - functions that write through their pointer parameters (these can
      never be const);
    - shared id-like helpers called from both writing and reading contexts
      — the monomorphic system conflates their call sites, the polymorphic
      system separates them (Section 4.3), which is where the Poly column
      exceeds Mono;
    - library calls (const-declared and not), globals, structs with shared
      field declarations, typedefs, casts, varargs, recursion and mutual
      recursion.

    The mix fractions below are tuned so the generated suite lands in the
    paper's reported ranges (Declared < Mono < Poly < Total, Poly ≈ 5-16%
    over Mono). *)

type profile = {
  pct_writer : int;  (** functions that write through a pointer param *)
  pct_helper_reader : int;
      (** read-only functions that route a param through a shared helper
          (poisoned under mono, free under poly) *)
  pct_declared_const : int;  (** read-only params annotated const *)
  pct_struct_fn : int;  (** functions operating on a struct *)
  helpers : int;  (** number of shared id-like helpers *)
}

let default_profile =
  {
    pct_writer = 28;
    pct_helper_reader = 7;
    pct_declared_const = 55;
    pct_struct_fn = 12;
    helpers = 5;
  }

let prelude =
  {|/* synthetic benchmark: generated, deterministic */
int printf(const char *fmt, ...);
int strlen(const char *s);
char *strcpy(char *dst, const char *src);
char *strchr(const char *s, int c);
int strcmp(const char *a, const char *b);
void *malloc(int n);
void free(void *p);
char *gets(char *buf);
int atoi(const char *s);

struct entry { char *key; char *value; int count; };
struct node { int tag; struct node *next; char *payload; };
typedef char *string;
typedef struct entry *entry_ptr;

char *g_buffer;
const char *g_version = "3.0";
int g_count;
struct entry g_table[16];
|}

(* every generated function records how later functions may call it: a
   template producing a correctly-aritied call, given an optional pointer
   argument to pass *)
type gfun = { name : string; call : string option -> string }

let generate ?(profile = default_profile) ~seed ~target_lines () : string =
  let rng = Rng.create seed in
  let buf = Buffer.create (target_lines * 32) in
  Buffer.add_string buf prelude;
  let lines = ref (List.length (String.split_on_char '\n' prelude)) in
  let out fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n';
        String.iter (fun c -> if c = '\n' then incr lines) s;
        incr lines)
      fmt
  in
  let funs : gfun list ref = ref [] in
  let n = ref 0 in
  let fresh prefix =
    incr n;
    Printf.sprintf "%s_%d" prefix !n
  in
  (* shared helpers: id-like functions whose parameter flows to the result,
     the engine of the mono/poly difference *)
  let helpers = ref [] in
  for _ = 1 to profile.helpers do
    let name = fresh "find" in
    (match Rng.int rng 3 with
    | 0 ->
        out "char *%s(char *s) { return s; }" name;
        out ""
    | 1 ->
        out "char *%s(char *s, int n) {" name;
        out "  while (n > 0) { s++; n--; }";
        out "  return s;";
        out "}";
        out ""
    | _ ->
        out "char *%s(char *s) {" name;
        out "  if (*s == 0) return s;";
        out "  return %s(s + 1);" name;
        (* recursive *)
        out "}";
        out "");
    helpers := name :: !helpers
  done;
  (* a mutually recursive pair, as real parsers have *)
  let even = fresh "even" and odd = fresh "odd" in
  out "int %s(int n);" odd;
  out "int %s(int n) { if (n == 0) return 1; return %s(n - 1); }" even odd;
  out "int %s(int n) { if (n == 0) return 0; return %s(n - 1); }" odd even;
  out "";
  let call_existing ~arg =
    match !funs with
    | [] -> Printf.sprintf "g_count += %d;" (Rng.int rng 100)
    | fs ->
        let f = Rng.pick_list rng fs in
        f.call arg
  in
  while !lines < target_lines do
    let kind =
      let k = Rng.int rng 100 in
      if k < profile.pct_writer then `Writer
      else if k < profile.pct_writer + profile.pct_helper_reader then
        `HelperReader
      else if
        k < profile.pct_writer + profile.pct_helper_reader + profile.pct_struct_fn
      then `Struct
      else `Reader
    in
    match kind with
    | `Writer ->
        (* writes through its pointer parameter: can never be const *)
        let name = fresh "fill" in
        out "void %s(char *dst, int n) {" name;
        out "  int i;";
        out "  for (i = 0; i < n; i++) {";
        out "    dst[i] = 'a' + (i %% 26);";
        out "  }";
        (if Rng.percent rng 40 then out "  dst[n] = 0;");
        (if Rng.percent rng 30 then out "  %s" (call_existing ~arg:(Some "dst")));
        out "}";
        out "";
        let call arg =
          Printf.sprintf "%s(%s, %d);" name
            (Option.value arg ~default:"g_buffer")
            (Rng.int rng 32)
        in
        funs := { name; call } :: !funs
    | `HelperReader ->
        (* routes its parameter through a shared helper but never writes:
           poisoned by monomorphic analysis, clean under polymorphism *)
        let name = fresh "scan" in
        let h = Rng.pick_list rng !helpers in
        out "int %s(char *msg) {" name;
        (match Rng.int rng 2 with
        | 0 -> out "  char *t = %s(msg);" h
        | _ -> out "  char *t; t = %s(msg);" h);
        out "  if (t == 0) return -1;";
        out "  return *t;";
        out "}";
        out "";
        let call arg =
          Printf.sprintf "%s(%s);" name (Option.value arg ~default:"g_buffer")
        in
        funs := { name; call } :: !funs
    | `Struct ->
        let name = fresh "rec" in
        (match Rng.int rng 2 with
        | 0 ->
            out "int %s(struct entry *e) {" name;
            out "  if (e->count > 0) return e->count;";
            out "  return strlen(e->key);";
            out "}"
        | _ ->
            out "void %s(struct node *n, int tag) {" name;
            out "  while (n) {";
            out "    n->tag = tag;";
            out "    n = n->next;";
            out "  }";
            out "}");
        out ""
    | `Reader ->
        (* pure reader; a fraction declare const ("significant effort") *)
        let name = fresh "count" in
        let declared = Rng.percent rng profile.pct_declared_const in
        let q = if declared then "const " else "" in
        let variant = Rng.int rng 4 in
        (match variant with
        | 0 ->
            out "int %s(%schar *s) {" name q;
            out "  int n = 0;";
            out "  while (*s) { if (*s == ' ') n++; s++; }";
            out "  return n;";
            out "}"
        | 1 ->
            out "int %s(%schar *s, %schar *t) {" name q q;
            out "  while (*s && *t && *s == *t) { s++; t++; }";
            out "  return *s - *t;";
            out "}"
        | 2 ->
            out "int %s(%schar *s) {" name q;
            out "  int h = 0;";
            out "  while (*s) { h = h * 31 + *s; s++; }";
            out "  if (h < 0) h = -h;";
            out "  %s" (call_existing ~arg:None);
            out "  return h %% 97;";
            out "}"
        | _ ->
            out "int %s(%schar *s, int k) {" name q;
            out "  int i = 0;";
            out "  while (s[i]) {";
            out "    if (s[i] == k) return i;";
            out "    i++;";
            out "  }";
            out "  if (%s(i)) return -2;" even;
            out "  return -1;";
            out "}");
        out "";
        let call arg =
          let a = Option.value arg ~default:"g_buffer" in
          match variant with
          | 1 -> Printf.sprintf "%s(%s, g_version);" name a
          | 3 -> Printf.sprintf "%s(%s, %d);" name a (Rng.int rng 26)
          | _ -> Printf.sprintf "%s(%s);" name a
        in
        funs := { name; call } :: !funs
  done;
  (* a main so every helper has writing and reading callers *)
  out "int main(int argc, char **argv) {";
  out "  char local[64];";
  List.iter
    (fun h ->
      out "  { char *p; p = %s(local); *p = 'x'; }" h;
      out "  { %s(g_version); }" "strlen")
    !helpers;
  out "  printf(\"%%d\\n\", g_count);";
  out "  return 0;";
  out "}";
  Buffer.contents buf

let chains_prelude =
  {|/* synthetic chains benchmark: generated, deterministic */
int printf(const char *fmt, ...);
int strlen(const char *s);
char *g_buffer;
|}

(** Deep chains of tiny polymorphic helpers — the scheme-compaction
    stress workload. Each chain is [depth] one-line pass-through functions
    [char *step_C_K(char *s) { return step_C_(K-1)(s); }]: without
    compaction the scheme of level K contains a full instance of the
    level-(K-1) scheme, so instantiation work (and variables created)
    grows quadratically with [depth]; compacted, every scheme projects to
    its handful of interface variables and the growth is linear. Shared
    flat-returning readers called repeatedly with the same argument
    exercise the instantiation memo; a writer keeps the workload's
    mono/poly distinction alive. *)
let generate_chains ?(depth = 24) ~seed ~target_lines () : string =
  let rng = Rng.create seed in
  let buf = Buffer.create (target_lines * 32) in
  Buffer.add_string buf chains_prelude;
  let lines = ref (List.length (String.split_on_char '\n' chains_prelude)) in
  let out fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n';
        String.iter (fun c -> if c = '\n' then incr lines) s;
        incr lines)
      fmt
  in
  (* shared readers with flat results: the same const-pointer argument
     flows in at every call site, so within one caller all calls after the
     first are memo hits *)
  let readers = [ "rd_len"; "rd_sum"; "rd_spaces" ] in
  out "int rd_len(const char *s) { int n = 0; while (*s) { n++; s++; } return n; }";
  out "int rd_sum(const char *s) { int h = 0; while (*s) { h = h + *s; s++; } return h; }";
  out "int rd_spaces(const char *s) { int n = 0; while (*s) { if (*s == ' ') n++; s++; } return n; }";
  out "void smudge(char *dst) { *dst = 'x'; }";
  out "";
  let chains = ref [] in
  let nchains = ref 0 in
  (* reserve room for main's two calls per chain *)
  while !lines + (2 * !nchains) + 10 < target_lines do
    let c = !nchains in
    incr nchains;
    out "char *step_%d_0(char *s) { return s; }" c;
    for k = 1 to depth - 1 do
      out "char *step_%d_%d(char *s) { return step_%d_%d(s); }" c k c (k - 1)
    done;
    out "int probe_%d(char *s) {" c;
    out "  char *t;";
    out "  t = step_%d_%d(s);" c (depth - 1);
    out "  return *t;";
    out "}";
    out "int poll_%d(char *s) {" c;
    out "  int n = 0;";
    for _ = 1 to 2 + Rng.int rng 3 do
      out "  n = n + %s(s);" (Rng.pick_list rng readers)
    done;
    out "  return n;";
    out "}";
    out "";
    chains := c :: !chains
  done;
  out "int main(int argc, char **argv) {";
  out "  char local[64];";
  out "  smudge(local);";
  List.iter
    (fun c ->
      out "  probe_%d(local);" c;
      out "  poll_%d(local);" c)
    (List.rev !chains);
  out "  printf(\"%%d\\n\", g_buffer != 0);";
  out "  return 0;";
  out "}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Multi-file projects (the 1M+ line scale corpus)                     *)
(* ------------------------------------------------------------------ *)

(** A synthetic multi-file project with a realistic cross-file call
    graph. The first returned file plays the role of the shared header
    (library prototypes, struct/typedef declarations, globals, and an
    extern prototype for {e every} project function, as a real build's
    headers would provide); the remaining files hold function bodies.
    Cross-file structure:

    - every file's functions call into the shared helper pool and into
      functions of other files (any order is legal — the header declares
      everything), giving a dense cross-file call graph;
    - [rings] mutual-recursion rings thread one function through {e each}
      file ([ring_r_f] calls [ring_r_(f+1 mod files)]), so the function
      dependency graph has many SCCs that span every file — the
      wavefront scheduler's worst case;
    - the usual const-annotation mix (readers, writers, helper readers)
      per file, so the analysis results exercise the same mono/poly
      structure as the single-file corpus;
    - the last file defines [main], calling every helper both through a
      writer and a reader context.

    Deterministic: the file list depends only on the arguments. *)
let generate_project ?(profile = default_profile) ?files ?(rings = 3) ~seed
    ~target_lines () : (string * string) list =
  let nfiles =
    match files with
    | Some f -> max 2 f
    | None -> max 4 (min 64 (target_lines / 25_000))
  in
  let rng = Rng.create seed in
  let protos = Buffer.create 4096 in  (* extern prototypes, header tail *)
  let n = ref 0 in
  let fresh prefix =
    incr n;
    Printf.sprintf "%s_%d" prefix !n
  in
  (* the cross-file mutual-recursion rings: fix all names up front so any
     member can call the next one before its file is generated *)
  let ring_name r f = Printf.sprintf "ring_%d_%d" r f in
  for r = 0 to rings - 1 do
    for f = 0 to nfiles - 1 do
      Buffer.add_string protos
        (Printf.sprintf "int %s(int n, char *s);\n" (ring_name r f))
    done
  done;
  (* shared helpers live in the first body file; names fixed up front *)
  let helpers = ref [] in
  for _ = 1 to profile.helpers do
    let name = fresh "find" in
    helpers := name :: !helpers;
    Buffer.add_string protos (Printf.sprintf "char *%s(char *s);\n" name)
  done;
  let helpers = List.rev !helpers in
  (* a mutually recursive parity pair, as real parsers have (the
     single-file generator has the same pair): a flat int->int signature
     every file's readers call across the project *)
  let par_even = fresh "par_even" and par_odd = fresh "par_odd" in
  Buffer.add_string protos (Printf.sprintf "int %s(int n);\n" par_even);
  Buffer.add_string protos (Printf.sprintf "int %s(int n);\n" par_odd);
  let funs : gfun list ref = ref [] in
  let call_existing ~arg =
    match !funs with
    | [] -> Printf.sprintf "g_count += %d;" (Rng.int rng 100)
    | fs ->
        let f = Rng.pick_list rng fs in
        f.call arg
  in
  let per_file = max 40 (target_lines / nfiles) in
  let body_files = ref [] in
  for fidx = 0 to nfiles - 1 do
    let buf = Buffer.create (per_file * 32) in
    let lines = ref 0 in
    let out fmt =
      Printf.ksprintf
        (fun s ->
          Buffer.add_string buf s;
          Buffer.add_char buf '\n';
          String.iter (fun c -> if c = '\n' then incr lines) s;
          incr lines)
        fmt
    in
    out "/* file %d of %d: generated, deterministic */" (fidx + 1) nfiles;
    if fidx = 0 then begin
      (* the shared helper pool: id-like functions whose parameter flows
         to the result — the engine of the mono/poly difference *)
      List.iter
        (fun name ->
          match Rng.int rng 3 with
          | 0 ->
              out "char *%s(char *s) { return s; }" name;
              out ""
          | 1 ->
              out "char *%s(char *s) {" name;
              out "  if (*s == ' ') return s + 1;";
              out "  return s;";
              out "}";
              out ""
          | _ ->
              out "char *%s(char *s) {" name;
              out "  if (*s == 0) return s;";
              out "  return %s(s + 1);" name;
              out "}";
              out "")
        helpers;
      out "int %s(int n) { if (n == 0) return 1; return %s(n - 1); }"
        par_even par_odd;
      out "int %s(int n) { if (n == 0) return 0; return %s(n - 1); }"
        par_odd par_even;
      out ""
    end;
    (* this file's members of every mutual-recursion ring *)
    for r = 0 to rings - 1 do
      let next = ring_name r ((fidx + 1) mod nfiles) in
      out "int %s(int n, char *s) {" (ring_name r fidx);
      out "  if (n <= 0) return *s;";
      out "  return %s(n - 1, s);" next;
      out "}";
      out ""
    done;
    while !lines < per_file do
      let kind =
        let k = Rng.int rng 100 in
        if k < profile.pct_writer then `Writer
        else if k < profile.pct_writer + profile.pct_helper_reader then
          `HelperReader
        else if
          k
          < profile.pct_writer + profile.pct_helper_reader
            + profile.pct_struct_fn
        then `Struct
        else `Reader
      in
      match kind with
      | `Writer ->
          let name = fresh "fill" in
          out "void %s(char *dst, int n) {" name;
          out "  int i;";
          out "  for (i = 0; i < n; i++) {";
          out "    dst[i] = 'a' + (i %% 26);";
          out "  }";
          (if Rng.percent rng 40 then out "  dst[n] = 0;");
          (if Rng.percent rng 30 then
             out "  %s" (call_existing ~arg:(Some "dst")));
          out "}";
          out "";
          Buffer.add_string protos
            (Printf.sprintf "void %s(char *dst, int n);\n" name);
          let call arg =
            Printf.sprintf "%s(%s, %d);" name
              (Option.value arg ~default:"g_buffer")
              (Rng.int rng 32)
          in
          funs := { name; call } :: !funs
      | `HelperReader ->
          let name = fresh "scan" in
          let h = Rng.pick_list rng helpers in
          out "int %s(char *msg) {" name;
          (match Rng.int rng 2 with
          | 0 -> out "  char *t = %s(msg);" h
          | _ -> out "  char *t; t = %s(msg);" h);
          out "  if (t == 0) return -1;";
          out "  return *t;";
          out "}";
          out "";
          Buffer.add_string protos (Printf.sprintf "int %s(char *msg);\n" name);
          let call arg =
            Printf.sprintf "%s(%s);" name (Option.value arg ~default:"g_buffer")
          in
          funs := { name; call } :: !funs
      | `Struct ->
          let name = fresh "rec" in
          (match Rng.int rng 2 with
          | 0 ->
              out "int %s(struct entry *e) {" name;
              out "  if (e->count > 0) return e->count;";
              out "  return strlen(e->key);";
              out "}"
          | _ ->
              out "void %s(struct node *n, int tag) {" name;
              out "  while (n) {";
              out "    n->tag = tag;";
              out "    n = n->next;";
              out "  }";
              out "}");
          out ""
      | `Reader ->
          let name = fresh "count" in
          let declared = Rng.percent rng profile.pct_declared_const in
          let q = if declared then "const " else "" in
          let variant = Rng.int rng 4 in
          (match variant with
          | 0 ->
              out "int %s(%schar *s) {" name q;
              out "  int n = 0;";
              out "  while (*s) { if (*s == ' ') n++; s++; }";
              out "  return n;";
              out "}"
          | 1 ->
              out "int %s(%schar *s, %schar *t) {" name q q;
              out "  while (*s && *t && *s == *t) { s++; t++; }";
              out "  return *s - *t;";
              out "}"
          | 2 ->
              out "int %s(%schar *s) {" name q;
              out "  int h = 0;";
              out "  while (*s) { h = h * 31 + *s; s++; }";
              out "  if (h < 0) h = -h;";
              out "  %s" (call_existing ~arg:None);
              out "  return h %% 97;";
              out "}"
          | _ ->
              out "int %s(%schar *s, int k) {" name q;
              out "  int i = 0;";
              out "  while (s[i]) {";
              out "    if (s[i] == k) return i;";
              out "    i++;";
              out "  }";
              out "  if (%s(k)) return -3;" par_even;
              out "  if (%s(%d, s) > 0) return -2;"
                (ring_name (Rng.int rng rings) (Rng.int rng nfiles))
                (Rng.int rng 8);
              out "  return -1;";
              out "}");
          out "";
          (match variant with
          | 1 ->
              Buffer.add_string protos
                (Printf.sprintf "int %s(%schar *s, %schar *t);\n" name q q)
          | 3 ->
              Buffer.add_string protos
                (Printf.sprintf "int %s(%schar *s, int k);\n" name q)
          | _ ->
              Buffer.add_string protos
                (Printf.sprintf "int %s(%schar *s);\n" name q));
          let call arg =
            let a = Option.value arg ~default:"g_buffer" in
            match variant with
            | 1 -> Printf.sprintf "%s(%s, g_version);" name a
            | 3 -> Printf.sprintf "%s(%s, %d);" name a (Rng.int rng 26)
            | _ -> Printf.sprintf "%s(%s);" name a
          in
          funs := { name; call } :: !funs
    done;
    if fidx = nfiles - 1 then begin
      (* main: every helper gets a writing and a reading caller, and every
         ring is entered once *)
      out "int main(int argc, char **argv) {";
      out "  char local[64];";
      List.iter
        (fun h ->
          out "  { char *p; p = %s(local); *p = 'x'; }" h;
          out "  { strlen(g_version); }")
        helpers;
      for r = 0 to rings - 1 do
        out "  g_count += %s(%d, local);" (ring_name r 0) (8 + r)
      done;
      out "  printf(\"%%d\\n\", g_count);";
      out "  return 0;";
      out "}"
    end;
    body_files :=
      (Printf.sprintf "mod_%02d.c" fidx, Buffer.contents buf) :: !body_files
  done;
  let header =
    prelude ^ "\n/* project-wide prototypes (the shared header) */\n"
    ^ Buffer.contents protos
  in
  ("project_h.c", header) :: List.rev !body_files

(** Total line count of a generated project (all files). *)
let project_lines (files : (string * string) list) : int =
  List.fold_left
    (fun acc (_, src) ->
      acc + List.length (String.split_on_char '\n' src) - 1)
    0 files
