(** Hand-written mini-C programs embedded in the repository: realistic
    small utilities used by tests and examples, in the spirit of the
    paper's benchmark domain (string/diff/macro utilities). *)

(** A small string library: the strchr-style functions the paper's
    introduction discusses (a const parameter whose result points into
    it — the motivating case for qualifier polymorphism). *)
let string_lib =
  {|/* mini string library */
int printf(const char *fmt, ...);

int my_strlen(const char *s) {
  int n = 0;
  while (*s) { n++; s++; }
  return n;
}

char *my_strchr(char *s, int c) {
  while (*s) {
    if (*s == c) return s;
    s++;
  }
  return 0;
}

char *my_strcpy(char *dst, const char *src) {
  char *d = dst;
  while (*src) { *d = *src; d++; src++; }
  *d = 0;
  return dst;
}

int my_strcmp(const char *a, const char *b) {
  while (*a && *b && *a == *b) { a++; b++; }
  return *a - *b;
}

char *my_strcat(char *dst, const char *src) {
  char *d = dst;
  while (*d) d++;
  my_strcpy(d, src);
  return dst;
}

void upcase(char *s) {
  while (*s) {
    if (*s >= 'a' && *s <= 'z') *s = *s - 32;
    s++;
  }
}

int main(void) {
  char buf[64];
  char *p;
  my_strcpy(buf, "hello world");
  p = my_strchr(buf, 'w');
  if (p) upcase(p);
  printf("%s %d\n", buf, my_strlen(buf));
  return 0;
}
|}

(** A word-frequency counter with a hash table: struct field sharing,
    library allocation, typedefs. *)
let wordcount =
  {|/* word frequency counter */
int printf(const char *fmt, ...);
void *malloc(int n);
int strcmp(const char *a, const char *b);
char *strcpy(char *dst, const char *src);

struct bucket {
  char *word;
  int count;
  struct bucket *next;
};

typedef struct bucket *bucket_ptr;

struct bucket *table[101];

int hash(const char *s) {
  int h = 0;
  while (*s) { h = h * 31 + *s; s++; }
  if (h < 0) h = -h;
  return h % 101;
}

struct bucket *lookup(const char *word) {
  struct bucket *b = table[hash(word)];
  while (b) {
    if (strcmp(b->word, word) == 0) return b;
    b = b->next;
  }
  return 0;
}

void record(const char *word, int len) {
  struct bucket *b = lookup(word);
  if (b) {
    b->count++;
  } else {
    int h = hash(word);
    b = (struct bucket *)malloc(sizeof(struct bucket));
    b->word = (char *)malloc(len + 1);
    strcpy(b->word, word);
    b->count = 1;
    b->next = table[h];
    table[h] = b;
  }
}

int total(void) {
  int i, n = 0;
  for (i = 0; i < 101; i++) {
    struct bucket *b = table[i];
    while (b) { n += b->count; b = b->next; }
  }
  return n;
}

int main(void) {
  record("the", 3);
  record("cat", 3);
  record("the", 3);
  printf("%d\n", total());
  return 0;
}
|}

(** A tiny line-diff: two-pointer scanning, const inputs, buffers. *)
let minidiff =
  {|/* minimal diff-like scanner */
int printf(const char *fmt, ...);
int strlen(const char *s);

int common_prefix(const char *a, const char *b) {
  int n = 0;
  while (a[n] && b[n] && a[n] == b[n]) n++;
  return n;
}

int common_suffix(const char *a, const char *b) {
  int la = strlen(a), lb = strlen(b);
  int n = 0;
  while (n < la && n < lb && a[la - 1 - n] == b[lb - 1 - n]) n++;
  return n;
}

void emit_change(char *out, const char *a, int from, int to) {
  int i, j = 0;
  for (i = from; i < to; i++) { out[j] = a[i]; j++; }
  out[j] = 0;
}

int diff_lines(const char *a, const char *b, char *out) {
  int p = common_prefix(a, b);
  int s = common_suffix(a, b);
  int la = strlen(a);
  if (p + s >= la && strlen(b) == la) return 0;
  emit_change(out, a, p, la - s);
  return 1;
}

int main(void) {
  char out[128];
  if (diff_lines("the quick fox", "the slow fox", out))
    printf("changed: %s\n", out);
  return 0;
}
|}

(** A macro-table interpreter sketch (m4-flavoured): function pointers,
    mutual recursion, varargs logging. *)
let minimacro =
  {|/* macro expander sketch */
int printf(const char *fmt, ...);
int strcmp(const char *a, const char *b);
char *strcpy(char *dst, const char *src);

struct macro {
  const char *name;
  char *(*expand)(char *out, const char *arg);
};

char *expand_upper(char *out, const char *arg) {
  int i = 0;
  while (arg[i]) {
    out[i] = (arg[i] >= 'a' && arg[i] <= 'z') ? arg[i] - 32 : arg[i];
    i++;
  }
  out[i] = 0;
  return out;
}

char *expand_quote(char *out, const char *arg) {
  int i = 1;
  out[0] = '`';
  while (*arg) { out[i] = *arg; i++; arg++; }
  out[i] = '\'';
  out[i + 1] = 0;
  return out;
}

struct macro macros[2];

void init_macros(void) {
  macros[0].name = "upper";
  macros[0].expand = expand_upper;
  macros[1].name = "quote";
  macros[1].expand = expand_quote;
}

char *apply(const char *name, char *out, const char *arg) {
  int i;
  for (i = 0; i < 2; i++) {
    if (strcmp(macros[i].name, name) == 0)
      return macros[i].expand(out, arg);
  }
  strcpy(out, arg);
  return out;
}

int main(void) {
  char out[64];
  init_macros();
  printf("%s\n", apply("upper", out, "hello"));
  printf("%s\n", apply("quote", out, "world"));
  return 0;
}
|}


(** A tiny INI-style configuration parser: state machine over a buffer,
    const keys, writable value slots. *)
let miniconf =
  {|/* ini-style config scanner */
int printf(const char *fmt, ...);
int strcmp(const char *a, const char *b);

struct setting {
  char key[32];
  char value[64];
  int set;
};

struct setting settings[8];
int n_settings;

int is_space(int c) { return c == ' ' || c == '\t'; }

const char *skip_ws(const char *p) {
  while (*p && is_space(*p)) p++;
  return p;
}

int copy_until(char *dst, const char *src, int stop, int max) {
  int i = 0;
  while (src[i] && src[i] != stop && i < max - 1) {
    dst[i] = src[i];
    i++;
  }
  dst[i] = 0;
  return i;
}

int parse_line(const char *line) {
  struct setting *s;
  int k;
  line = skip_ws(line);
  if (*line == 0 || *line == '#') return 0;
  if (n_settings >= 8) return -1;
  s = &settings[n_settings];
  k = copy_until(s->key, line, '=', 32);
  if (line[k] != '=') return -1;
  copy_until(s->value, line + k + 1, '\n', 64);
  s->set = 1;
  n_settings++;
  return 1;
}

const char *get_value(const char *key) {
  int i;
  for (i = 0; i < n_settings; i++) {
    if (settings[i].set && strcmp(settings[i].key, key) == 0)
      return settings[i].value;
  }
  return 0;
}

int main(void) {
  parse_line("color = blue");
  parse_line("# a comment");
  parse_line("size = 42");
  printf("%s\n", get_value("color"));
  return 0;
}
|}

(** Linked-list utilities: insertion sort with pointer rewiring — heavy
    aliasing through struct fields. *)
let minilist =
  {|/* linked list insertion sort */
int printf(const char *fmt, ...);
void *malloc(int n);

struct cell {
  int head;
  struct cell *tail;
};

struct cell *cons(int h, struct cell *t) {
  struct cell *c = (struct cell *)malloc(sizeof(struct cell));
  c->head = h;
  c->tail = t;
  return c;
}

int list_length(struct cell *l) {
  int n = 0;
  while (l) { n++; l = l->tail; }
  return n;
}

struct cell *insert_sorted(struct cell *l, struct cell *c) {
  struct cell *p;
  if (!l || c->head <= l->head) {
    c->tail = l;
    return c;
  }
  p = l;
  while (p->tail && p->tail->head < c->head) p = p->tail;
  c->tail = p->tail;
  p->tail = c;
  return l;
}

struct cell *sort(struct cell *l) {
  struct cell *out = 0;
  while (l) {
    struct cell *next = l->tail;
    out = insert_sorted(out, l);
    l = next;
  }
  return out;
}

int sum(struct cell *l) {
  if (!l) return 0;
  return l->head + sum(l->tail);
}

int main(void) {
  struct cell *l = cons(3, cons(1, cons(2, 0)));
  l = sort(l);
  printf("%d %d\n", list_length(l), sum(l));
  return 0;
}
|}

let all =
  [
    ("string-lib", string_lib);
    ("wordcount", wordcount);
    ("minidiff", minidiff);
    ("minimacro", minimacro);
    ("miniconf", miniconf);
    ("minilist", minilist);
  ]

(** A hand-written three-unit project (shared header + two modules):
    the smallest multi-file analysis target, used by the driver tests and
    the CLI's multi-FILE examples. The header unit declares everything;
    the modules call across the boundary in both directions (a two-file
    mutual recursion). *)
let miniproject : (string * string) list =
  [
    ( "proj_h.c",
      {|/* shared header */
int printf(const char *fmt, ...);
int strlen(const char *s);
char *g_name;
int mod_a_depth(int n, char *s);
int mod_b_probe(int n, char *s);
char *mod_a_skip(char *s);
int mod_b_hash(const char *s);
|} );
    ( "proj_a.c",
      {|/* module a */
char *mod_a_skip(char *s) {
  while (*s == ' ') s++;
  return s;
}

int mod_a_depth(int n, char *s) {
  if (n <= 0) return *s;
  return mod_b_probe(n - 1, s);
}
|} );
    ( "proj_b.c",
      {|/* module b */
int mod_b_hash(const char *s) {
  int h = 0;
  while (*s) { h = h * 31 + *s; s++; }
  return h;
}

int mod_b_probe(int n, char *s) {
  char *t;
  if (n <= 0) return mod_b_hash(s);
  t = mod_a_skip(s);
  return mod_a_depth(n - 1, t);
}

int main(int argc, char **argv) {
  char buf[8];
  buf[0] = 'x'; buf[1] = 0;
  printf("%d\n", mod_a_depth(3, buf));
  return 0;
}
|} );
  ]
