(** Structured diagnostics for the C front end.

    Every lexer/parser/frontend failure is represented as a diagnostic
    carrying a severity, a stable code (grep-able and documented in
    DESIGN.md "Resilience"), a source span, and a message. The resilient
    pipeline ({!Cparse.parse_program_partial}, {!Cqual.Driver.run_source})
    accumulates diagnostics instead of aborting on the first error.

    Code ranges:
    - [E01xx] lexical errors (unexpected character, unterminated
      string/comment);
    - [E02xx] parse errors ([E0299] is the "too many errors" note);
    - [E03xx] frontend/semantic errors (unknown typedef);
    - [W04xx] degraded-analysis warnings (budget exhaustion);
    - [N09xx] advisory notices (environment/configuration hints such as
      [--jobs] oversubscription) — never about the source text, never
      affect the exit status, and machine clients (the [typequald]
      daemon) ship them as structured values instead of raw stderr. *)

type severity = Error | Warning | Note | Notice

(** A half-open region of source text. Lines and columns are 1-based;
    [ec] is the column of the last character (inclusive). A span whose
    columns are 0 carries line precision only. *)
type span = { sl : int; sc : int; el : int; ec : int }

type t = {
  d_severity : severity;
  d_code : string;
  d_span : span;
  d_message : string;
  d_unit : string option;
      (** translation unit the span is local to; [None] for single-unit
          runs, where positions need no file prefix *)
}

let span_of_line l = { sl = l; sc = 0; el = l; ec = 0 }
let dummy_span = span_of_line 0

let make severity ~code span message =
  {
    d_severity = severity;
    d_code = code;
    d_span = span;
    d_message = message;
    d_unit = None;
  }

let error = make Error
let warning = make Warning
let note = make Note

(** An advisory notice bound to no source position: environment and
    configuration hints ([N09xx]). *)
let notice ~code message = make Notice ~code dummy_span message

let is_error d = d.d_severity = Error
let is_notice d = d.d_severity = Notice

(** Rebind a diagnostic to a unit-local position: multi-unit runs report
    [unit:line:col], so a parse error on line 1 of the third file says so
    instead of quoting an offset into a concatenated program. *)
let with_unit ?span unit d =
  { d with d_unit = Some unit; d_span = Option.value span ~default:d.d_span }

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Note -> Fmt.string ppf "note"
  | Notice -> Fmt.string ppf "notice"

let pp_span ppf { sl; sc; el; ec } =
  if sc = 0 then Fmt.pf ppf "line %d" sl
  else if sl = el then
    if sc = ec then Fmt.pf ppf "%d:%d" sl sc
    else Fmt.pf ppf "%d:%d-%d" sl sc ec
  else Fmt.pf ppf "%d:%d-%d:%d" sl sc el ec

(** Uniform rendering: [error[E0201] 3:5-8: message], with a unit prefix
    ([error[E0201] mod_03.c:3:5-8: message]) when the diagnostic belongs
    to one unit of a multi-unit run. *)
let pp ppf d =
  match d.d_unit with
  | None ->
      Fmt.pf ppf "%a[%s] %a: %s" pp_severity d.d_severity d.d_code pp_span
        d.d_span d.d_message
  | Some u ->
      Fmt.pf ppf "%a[%s] %s:%a: %s" pp_severity d.d_severity d.d_code u
        pp_span d.d_span d.d_message

let to_string d = Fmt.str "%a" pp d
