(** Whole-program tables over a parsed translation unit: typedef expansion
    (typedefs are macro-expanded, so distinct uses share no qualifiers —
    Section 4.2), struct/union field tables (shared per declaration —
    Section 4.2), and the function/global inventories the const inference
    and the FDG construction consume. *)

open Cast

type t = {
  typedefs : (string, ctype) Hashtbl.t;
  comps : (string, (string * ctype) list) Hashtbl.t;  (* struct/union tag -> fields *)
  fundefs : (string, fundef) Hashtbl.t;
  protos : (string, ctype) Hashtbl.t;  (* declared but possibly undefined *)
  globals : (string, decl) Hashtbl.t;
  order : global list;  (* original order *)
}

exception Frontend_error of string

let build (prog : program) : t =
  let t =
    {
      typedefs = Hashtbl.create 16;
      comps = Hashtbl.create 16;
      fundefs = Hashtbl.create 16;
      protos = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      order = prog;
    }
  in
  List.iter
    (function
      | GTypedef (name, ty, _) -> Hashtbl.replace t.typedefs name ty
      | GComp (tag, _, fields, _) -> Hashtbl.replace t.comps tag fields
      | GFun f -> Hashtbl.replace t.fundefs f.f_name f
      | GProto (name, ty, _) ->
          if not (Hashtbl.mem t.protos name) then Hashtbl.replace t.protos name ty
      | GVar d -> Hashtbl.replace t.globals d.d_name d
      | GEnum _ -> ())
    prog;
  t

(** Link per-unit tables into one whole-program table, in unit order.
    Deterministically equivalent to {!build} over the concatenation of
    the units' globals: typedefs, struct/union layouts, function
    definitions and global variables resolve last-definition-wins, while
    prototypes keep the first declaration — each per-unit table has
    already collapsed its within-unit duplicates the same way, so a
    cross-unit table fold in file order reproduces the sequential scan. *)
let merge (units : t list) : t =
  let t =
    {
      typedefs = Hashtbl.create 64;
      comps = Hashtbl.create 64;
      fundefs = Hashtbl.create 64;
      protos = Hashtbl.create 64;
      globals = Hashtbl.create 64;
      order = List.concat_map (fun u -> u.order) units;
    }
  in
  List.iter
    (fun u ->
      Hashtbl.iter (fun k v -> Hashtbl.replace t.typedefs k v) u.typedefs;
      Hashtbl.iter (fun k v -> Hashtbl.replace t.comps k v) u.comps;
      Hashtbl.iter (fun k v -> Hashtbl.replace t.fundefs k v) u.fundefs;
      Hashtbl.iter
        (fun k v ->
          if not (Hashtbl.mem t.protos k) then Hashtbl.replace t.protos k v)
        u.protos;
      Hashtbl.iter (fun k v -> Hashtbl.replace t.globals k v) u.globals)
    units;
  t

(** Expand typedefs away (macro-expansion semantics, Section 4.2): the
    qualifiers written on the use site are merged with the definition's.
    Function types expand their parameter and return types. *)
let rec expand t (ty : ctype) : ctype =
  match ty with
  | TNamed (name, q) -> (
      match Hashtbl.find_opt t.typedefs name with
      | Some def -> expand t (add_quals q def)
      | None -> raise (Frontend_error ("unknown typedef " ^ name)))
  | TPtr (inner, q) -> TPtr (expand t inner, q)
  | TArray (inner, n, q) -> TArray (expand t inner, n, q)
  | TFun (ret, params, va) ->
      TFun
        ( expand t ret,
          List.map (fun (n, pt) -> (n, expand t pt)) params,
          va )
  | TVoid _ | TInt _ | TFloat _ | TStruct _ -> ty

(** Array-of-T in parameter position decays to pointer-to-T. *)
let decay = function
  | TArray (inner, _, q) -> TPtr (inner, q)
  | ty -> ty

(** Parameters of a function type, typedefs expanded, arrays decayed. *)
let param_types t = function
  | TFun (_, params, _) ->
      List.map (fun (n, pt) -> (n, decay (expand t pt))) params
  | _ -> raise (Frontend_error "param_types: not a function type")

let return_type t = function
  | TFun (ret, _, _) -> expand t ret
  | _ -> raise (Frontend_error "return_type: not a function type")

let fields t tag =
  match Hashtbl.find_opt t.comps tag with
  | Some fs -> List.map (fun (n, ft) -> (n, expand t ft)) fs
  | None -> []

let find_fun t name = Hashtbl.find_opt t.fundefs name
let is_defined t name = Hashtbl.mem t.fundefs name

(** Declared (prototype) type of a function not defined in this program:
    the paper's "library function" case (Section 4.2). *)
let find_proto t name = Hashtbl.find_opt t.protos name

let functions t =
  List.filter_map (function GFun f -> Some f | _ -> None) t.order

let global_vars t =
  List.filter_map (function GVar d -> Some d | _ -> None) t.order

(** Count physical source lines (for Table 1-style reporting). *)
let count_lines src =
  String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 1 src
