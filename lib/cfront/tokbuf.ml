(** Flat token buffer: the allocation-lean product of the per-unit lexer.

    The legacy tokenizer materializes a [(Ctoken.t * Diag.span) list] —
    a cons cell, a tuple, and a span record per token, ~14 words each,
    which dominates frontend allocation on million-line corpora. A
    [Tokbuf.t] instead holds one pointer array of tokens (identifiers
    interned, so each distinct name owns a single boxed [IDENT]) and one
    flat [int array] of span components; spans are rebuilt lazily, only
    on the error paths that actually report them.

    The intern table doubles as the unit's identifier set: the link step
    of the per-unit frontend asks {!mentions} to decide whether a
    speculatively parsed unit could have been influenced by typedef or
    enum-constant names exported by earlier units (see DESIGN.md
    "Per-unit frontend"). *)

type t = {
  toks : Ctoken.t array;  (** [n] tokens; the last is always [EOF] *)
  spans : int array;  (** 4 ints per token: sl, sc, el, ec *)
  n : int;
  interns : (string, Ctoken.t) Hashtbl.t;
      (** name -> its unique token: keywords map to their [KW_*], every
          identifier seen in this unit maps to its shared [IDENT] *)
}

let length t = t.n

let tok t i = t.toks.(i)

let span t i : Diag.span =
  let o = 4 * i in
  {
    Diag.sl = t.spans.(o);
    sc = t.spans.(o + 1);
    el = t.spans.(o + 2);
    ec = t.spans.(o + 3);
  }

let line t i = t.spans.(4 * i)

(** Did this unit's source mention [name] as an identifier? Keywords map
    to keyword tokens, so they never answer [true]. *)
let mentions t name =
  match Hashtbl.find_opt t.interns name with
  | Some (Ctoken.IDENT _) -> true
  | _ -> false

(** Distinct identifier names lexed from the unit, in no particular
    order — the persistent form of {!mentions} carried by the per-unit
    AST cache payload (the intern table itself is not marshaled). *)
let ident_names t =
  Hashtbl.fold
    (fun name tok acc ->
      match tok with Ctoken.IDENT _ -> name :: acc | _ -> acc)
    t.interns []

(** Compatibility bridge for the legacy list-based consumers. *)
let to_list t =
  List.init t.n (fun i -> (tok t i, span t i))

let of_list (l : (Ctoken.t * Diag.span) list) : t =
  let n = List.length l in
  let toks = Array.make (max n 1) Ctoken.EOF in
  let spans = Array.make (4 * max n 1) 0 in
  let interns = Hashtbl.create 64 in
  List.iteri
    (fun i (tk, (sp : Diag.span)) ->
      toks.(i) <- tk;
      let o = 4 * i in
      spans.(o) <- sp.Diag.sl;
      spans.(o + 1) <- sp.Diag.sc;
      spans.(o + 2) <- sp.Diag.el;
      spans.(o + 3) <- sp.Diag.ec;
      match tk with
      | Ctoken.IDENT name ->
          if not (Hashtbl.mem interns name) then Hashtbl.add interns name tk
      | _ -> ())
    l;
  { toks; spans; n; interns }
