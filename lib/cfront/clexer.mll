(* Lexer for the mini-C language. Handles ANSI C tokens, both comment
   styles, character/string escapes, hex/octal integer literals, and the
   paper's Section 2.5 qualifier extension: identifiers prefixed with `$'
   lex as QUALNAME so user qualifiers never collide with C identifiers.
   Preprocessor lines (`#...') are skipped — benchmark inputs are assumed
   to be post-expansion, as with the paper's use of a real C front end.

   Positions are tracked through the standard Lexing machinery so every
   token carries a line/column span; lexical errors are structured
   diagnostics (Diag.t). `tokenize' raises on the first error; the
   recovering `tokenize_partial' skips bad characters (E0101) and turns
   unterminated strings/comments (E0102/E0103) into an early EOF, in both
   cases accumulating diagnostics instead of failing. *)

{
open Ctoken

exception Lex_error of Diag.t

let col_of (p : Lexing.position) = p.pos_cnum - p.pos_bol + 1

let mkspan (s : Lexing.position) (e : Lexing.position) : Diag.span =
  let sc = col_of s in
  { Diag.sl = s.pos_lnum; sc; el = e.pos_lnum; ec = max (col_of e - 1) sc }

let span_here lexbuf =
  mkspan (Lexing.lexeme_start_p lexbuf) (Lexing.lexeme_end_p lexbuf)

(* Multi-lexeme tokens (strings, block comments) record where they began
   so their spans and error positions cover the whole construct. *)
let construct_start = ref Lexing.dummy_pos

let lex_error ~code lexbuf msg =
  raise (Lex_error (Diag.error ~code (span_here lexbuf) msg))

let unterminated ~code lexbuf what =
  let sp = mkspan !construct_start (Lexing.lexeme_end_p lexbuf) in
  raise (Lex_error (Diag.error ~code sp ("unterminated " ^ what)))

let keywords = Hashtbl.create 64
let () =
  List.iter (fun (k, t) -> Hashtbl.add keywords k t)
    [
      ("void", KW_VOID); ("char", KW_CHAR); ("short", KW_SHORT);
      ("int", KW_INT); ("long", KW_LONG); ("float", KW_FLOAT);
      ("double", KW_DOUBLE); ("signed", KW_SIGNED); ("unsigned", KW_UNSIGNED);
      ("const", KW_CONST); ("volatile", KW_VOLATILE); ("struct", KW_STRUCT);
      ("union", KW_UNION); ("enum", KW_ENUM); ("typedef", KW_TYPEDEF);
      ("static", KW_STATIC); ("extern", KW_EXTERN); ("register", KW_REGISTER);
      ("auto", KW_AUTO); ("if", KW_IF); ("else", KW_ELSE);
      ("while", KW_WHILE); ("do", KW_DO); ("for", KW_FOR);
      ("return", KW_RETURN); ("break", KW_BREAK); ("continue", KW_CONTINUE);
      ("switch", KW_SWITCH); ("case", KW_CASE); ("default", KW_DEFAULT);
      ("goto", KW_GOTO); ("sizeof", KW_SIZEOF);
    ]

let unescape = function
  | 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | '0' -> '\000'
  | 'b' -> '\b' | '\\' -> '\\' | '\'' -> '\'' | '"' -> '"'
  | c -> c
}

let digit = ['0'-'9']
let hex = ['0'-'9' 'a'-'f' 'A'-'F']
let alpha = ['a'-'z' 'A'-'Z' '_']
let alnum = ['a'-'z' 'A'-'Z' '_' '0'-'9']
let ws = [' ' '\t' '\r']

rule token = parse
  | ws+                    { token lexbuf }
  | '\n'                   { Lexing.new_line lexbuf; token lexbuf }
  | "/*"                   { construct_start := Lexing.lexeme_start_p lexbuf;
                             block_comment lexbuf; token lexbuf }
  | "//" [^ '\n']*         { token lexbuf }
  | '#' [^ '\n']*          { token lexbuf }  (* preprocessor line: skipped *)
  | "0x" hex+ as s         { INT_LIT (int_of_string s) }
  | '0' ['0'-'7']+ as s    { INT_LIT (int_of_string ("0o" ^ String.sub s 1 (String.length s - 1))) }
  | digit+ '.' digit* (['e' 'E'] ['+' '-']? digit+)? as s
                           { FLOAT_LIT (float_of_string s) }
  | digit+ ['e' 'E'] ['+' '-']? digit+ as s
                           { FLOAT_LIT (float_of_string s) }
  | digit+ as s            { INT_LIT (int_of_string s) }
  | digit+ ['u' 'U' 'l' 'L']+ as s
                           { let i = ref 0 in
                             while !i < String.length s &&
                                   s.[!i] >= '0' && s.[!i] <= '9' do incr i done;
                             INT_LIT (int_of_string (String.sub s 0 !i)) }
  | '$' (alpha alnum* as s) { QUALNAME s }
  | alpha alnum* as s      { match Hashtbl.find_opt keywords s with
                             | Some t -> t
                             | None -> IDENT s }
  | '\'' '\\' (_ as c) '\'' { CHAR_LIT (unescape c) }
  | '\'' ([^ '\\' '\''] as c) '\'' { CHAR_LIT c }
  | '"'                    { construct_start := Lexing.lexeme_start_p lexbuf;
                             STRING_LIT (string_lit (Buffer.create 16) lexbuf) }
  | "..."                  { ELLIPSIS }
  | "->"                   { ARROW }
  | "++"                   { PLUSPLUS }
  | "--"                   { MINUSMINUS }
  | "<<="                  { SHL_ASSIGN }
  | ">>="                  { SHR_ASSIGN }
  | "<<"                   { SHL }
  | ">>"                   { SHR }
  | "<="                   { LE }
  | ">="                   { GE }
  | "=="                   { EQEQ }
  | "!="                   { NE }
  | "&&"                   { AMPAMP }
  | "||"                   { BARBAR }
  | "+="                   { PLUS_ASSIGN }
  | "-="                   { MINUS_ASSIGN }
  | "*="                   { STAR_ASSIGN }
  | "/="                   { SLASH_ASSIGN }
  | "%="                   { PERCENT_ASSIGN }
  | "&="                   { AMP_ASSIGN }
  | "|="                   { BAR_ASSIGN }
  | "^="                   { CARET_ASSIGN }
  | '('                    { LPAREN }
  | ')'                    { RPAREN }
  | '{'                    { LBRACE }
  | '}'                    { RBRACE }
  | '['                    { LBRACKET }
  | ']'                    { RBRACKET }
  | ';'                    { SEMI }
  | ','                    { COMMA }
  | ':'                    { COLON }
  | '?'                    { QUESTION }
  | '.'                    { DOT }
  | '*'                    { STAR }
  | '/'                    { SLASH }
  | '%'                    { PERCENT }
  | '+'                    { PLUS }
  | '-'                    { MINUS }
  | '&'                    { AMP }
  | '|'                    { BAR }
  | '^'                    { CARET }
  | '~'                    { TILDE }
  | '!'                    { BANG }
  | '<'                    { LT }
  | '>'                    { GT }
  | '='                    { ASSIGN }
  | eof                    { EOF }
  | _ as c                 { lex_error ~code:"E0101" lexbuf
                               (Printf.sprintf "unexpected character %C" c) }

and block_comment = parse
  | "*/"                   { () }
  | '\n'                   { Lexing.new_line lexbuf; block_comment lexbuf }
  | eof                    { unterminated ~code:"E0103" lexbuf "comment" }
  | _                      { block_comment lexbuf }

and string_lit buf = parse
  | '"'                    { Buffer.contents buf }
  | '\\' (_ as c)          { Buffer.add_char buf (unescape c); string_lit buf lexbuf }
  | '\n'                   { Lexing.new_line lexbuf; Buffer.add_char buf '\n';
                             string_lit buf lexbuf }
  | eof                    { unterminated ~code:"E0102" lexbuf "string" }
  | _ as c                 { Buffer.add_char buf c; string_lit buf lexbuf }

{
let init_lexbuf src =
  let lexbuf = Lexing.from_string src in
  lexbuf.Lexing.lex_curr_p <-
    { Lexing.pos_fname = ""; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  lexbuf

(* The span of the token just returned. Strings and comments run across
   several lexemes; [construct_start] pins their true start. *)
let token_span lexbuf = function
  | STRING_LIT _ -> mkspan !construct_start (Lexing.lexeme_end_p lexbuf)
  | _ -> span_here lexbuf

(** Tokenize a whole source string, pairing each token with its span.
    Raises {!Lex_error} on the first lexical error. *)
let tokenize (src : string) : (Ctoken.t * Diag.span) list =
  let lexbuf = init_lexbuf src in
  let rec go acc =
    let t = token lexbuf in
    let sp = token_span lexbuf t in
    match t with
    | EOF -> List.rev ((EOF, sp) :: acc)
    | t -> go ((t, sp) :: acc)
  in
  go []

(** Recovering tokenizer: lexical errors become diagnostics. A bad
    character is skipped (the lexer already consumed it); an unterminated
    string or comment necessarily ends the input, so lexing stops there.
    At most [max_errors] diagnostics are produced. *)
let tokenize_partial ?(max_errors = 20) (src : string) :
    (Ctoken.t * Diag.span) list * Diag.t list =
  let lexbuf = init_lexbuf src in
  let diags = ref [] in
  let eof_entry () =
    let p = Lexing.lexeme_end_p lexbuf in
    (EOF, mkspan p p)
  in
  let rec go acc =
    match token lexbuf with
    | EOF -> List.rev ((EOF, span_here lexbuf) :: acc)
    | t -> go ((t, token_span lexbuf t) :: acc)
    | exception Lex_error d ->
        diags := d :: !diags;
        if List.length !diags >= max_errors then
          List.rev (eof_entry () :: acc)
        else if d.Diag.d_code = "E0101" then go acc
        else (* unterminated construct: input is exhausted *)
          List.rev (eof_entry () :: acc)
  in
  let toks = go [] in
  (toks, List.rev !diags)
}
