(* Lexer for the mini-C language. Handles ANSI C tokens, both comment
   styles, character/string escapes, hex/octal integer literals, and the
   paper's Section 2.5 qualifier extension: identifiers prefixed with `$'
   lex as QUALNAME so user qualifiers never collide with C identifiers.
   Preprocessor lines (`#...') are skipped — benchmark inputs are assumed
   to be post-expansion, as with the paper's use of a real C front end.

   Positions are tracked through the standard Lexing machinery so every
   token carries a line/column span; lexical errors are structured
   diagnostics (Diag.t). `tokenize' raises on the first error; the
   recovering `tokenize_partial' skips bad characters (E0101) and turns
   unterminated strings/comments (E0102/E0103) into an early EOF, in both
   cases accumulating diagnostics instead of failing. *)

{
open Ctoken

exception Lex_error of Diag.t

let col_of (p : Lexing.position) = p.pos_cnum - p.pos_bol + 1

let mkspan (s : Lexing.position) (e : Lexing.position) : Diag.span =
  let sc = col_of s in
  { Diag.sl = s.pos_lnum; sc; el = e.pos_lnum; ec = max (col_of e - 1) sc }

let span_here lexbuf =
  mkspan (Lexing.lexeme_start_p lexbuf) (Lexing.lexeme_end_p lexbuf)

(* Multi-lexeme tokens (strings, block comments) record where they began
   so their spans and error positions cover the whole construct. *)
let construct_start = ref Lexing.dummy_pos

let lex_error ~code lexbuf msg =
  raise (Lex_error (Diag.error ~code (span_here lexbuf) msg))

let unterminated ~code lexbuf what =
  let sp = mkspan !construct_start (Lexing.lexeme_end_p lexbuf) in
  raise (Lex_error (Diag.error ~code sp ("unterminated " ^ what)))

let keywords = Hashtbl.create 64
let () =
  List.iter (fun (k, t) -> Hashtbl.add keywords k t)
    [
      ("void", KW_VOID); ("char", KW_CHAR); ("short", KW_SHORT);
      ("int", KW_INT); ("long", KW_LONG); ("float", KW_FLOAT);
      ("double", KW_DOUBLE); ("signed", KW_SIGNED); ("unsigned", KW_UNSIGNED);
      ("const", KW_CONST); ("volatile", KW_VOLATILE); ("struct", KW_STRUCT);
      ("union", KW_UNION); ("enum", KW_ENUM); ("typedef", KW_TYPEDEF);
      ("static", KW_STATIC); ("extern", KW_EXTERN); ("register", KW_REGISTER);
      ("auto", KW_AUTO); ("if", KW_IF); ("else", KW_ELSE);
      ("while", KW_WHILE); ("do", KW_DO); ("for", KW_FOR);
      ("return", KW_RETURN); ("break", KW_BREAK); ("continue", KW_CONTINUE);
      ("switch", KW_SWITCH); ("case", KW_CASE); ("default", KW_DEFAULT);
      ("goto", KW_GOTO); ("sizeof", KW_SIZEOF);
    ]

let unescape = function
  | 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | '0' -> '\000'
  | 'b' -> '\b' | '\\' -> '\\' | '\'' -> '\'' | '"' -> '"'
  | c -> c
}

let digit = ['0'-'9']
let hex = ['0'-'9' 'a'-'f' 'A'-'F']
let alpha = ['a'-'z' 'A'-'Z' '_']
let alnum = ['a'-'z' 'A'-'Z' '_' '0'-'9']
let ws = [' ' '\t' '\r']

rule token itab = parse
  | ws+                    { token itab lexbuf }
  | '\n'                   { Lexing.new_line lexbuf; token itab lexbuf }
  | "/*"                   { construct_start := Lexing.lexeme_start_p lexbuf;
                             block_comment lexbuf; token itab lexbuf }
  | "//" [^ '\n']*         { token itab lexbuf }
  | '#' [^ '\n']*          { token itab lexbuf }  (* preprocessor line: skipped *)
  | "0x" hex+ as s         { INT_LIT (int_of_string s) }
  | '0' ['0'-'7']+ as s    { INT_LIT (int_of_string ("0o" ^ String.sub s 1 (String.length s - 1))) }
  | digit+ '.' digit* (['e' 'E'] ['+' '-']? digit+)? as s
                           { FLOAT_LIT (float_of_string s) }
  | digit+ ['e' 'E'] ['+' '-']? digit+ as s
                           { FLOAT_LIT (float_of_string s) }
  | digit+ as s            { INT_LIT (int_of_string s) }
  | digit+ ['u' 'U' 'l' 'L']+ as s
                           { let i = ref 0 in
                             while !i < String.length s &&
                                   s.[!i] >= '0' && s.[!i] <= '9' do incr i done;
                             INT_LIT (int_of_string (String.sub s 0 !i)) }
  | '$' (alpha alnum* as s) { QUALNAME s }
  | alpha alnum* as s      { (* one lookup resolves keywords and interns
                                identifiers: each distinct name in a unit
                                shares a single boxed IDENT *)
                             match Hashtbl.find_opt itab s with
                             | Some t -> t
                             | None -> let t = IDENT s in
                                       Hashtbl.add itab s t; t }
  | '\'' '\\' (_ as c) '\'' { CHAR_LIT (unescape c) }
  | '\'' ([^ '\\' '\''] as c) '\'' { CHAR_LIT c }
  | '"'                    { construct_start := Lexing.lexeme_start_p lexbuf;
                             STRING_LIT (string_lit (Buffer.create 16) lexbuf) }
  | "..."                  { ELLIPSIS }
  | "->"                   { ARROW }
  | "++"                   { PLUSPLUS }
  | "--"                   { MINUSMINUS }
  | "<<="                  { SHL_ASSIGN }
  | ">>="                  { SHR_ASSIGN }
  | "<<"                   { SHL }
  | ">>"                   { SHR }
  | "<="                   { LE }
  | ">="                   { GE }
  | "=="                   { EQEQ }
  | "!="                   { NE }
  | "&&"                   { AMPAMP }
  | "||"                   { BARBAR }
  | "+="                   { PLUS_ASSIGN }
  | "-="                   { MINUS_ASSIGN }
  | "*="                   { STAR_ASSIGN }
  | "/="                   { SLASH_ASSIGN }
  | "%="                   { PERCENT_ASSIGN }
  | "&="                   { AMP_ASSIGN }
  | "|="                   { BAR_ASSIGN }
  | "^="                   { CARET_ASSIGN }
  | '('                    { LPAREN }
  | ')'                    { RPAREN }
  | '{'                    { LBRACE }
  | '}'                    { RBRACE }
  | '['                    { LBRACKET }
  | ']'                    { RBRACKET }
  | ';'                    { SEMI }
  | ','                    { COMMA }
  | ':'                    { COLON }
  | '?'                    { QUESTION }
  | '.'                    { DOT }
  | '*'                    { STAR }
  | '/'                    { SLASH }
  | '%'                    { PERCENT }
  | '+'                    { PLUS }
  | '-'                    { MINUS }
  | '&'                    { AMP }
  | '|'                    { BAR }
  | '^'                    { CARET }
  | '~'                    { TILDE }
  | '!'                    { BANG }
  | '<'                    { LT }
  | '>'                    { GT }
  | '='                    { ASSIGN }
  | eof                    { EOF }
  | _ as c                 { lex_error ~code:"E0101" lexbuf
                               (Printf.sprintf "unexpected character %C" c) }

and block_comment = parse
  | "*/"                   { () }
  | '\n'                   { Lexing.new_line lexbuf; block_comment lexbuf }
  | eof                    { unterminated ~code:"E0103" lexbuf "comment" }
  | _                      { block_comment lexbuf }

and string_lit buf = parse
  | '"'                    { Buffer.contents buf }
  | '\\' (_ as c)          { Buffer.add_char buf (unescape c); string_lit buf lexbuf }
  | '\n'                   { Lexing.new_line lexbuf; Buffer.add_char buf '\n';
                             string_lit buf lexbuf }
  | eof                    { unterminated ~code:"E0102" lexbuf "string" }
  | _ as c                 { Buffer.add_char buf c; string_lit buf lexbuf }

{
let init_lexbuf src =
  let lexbuf = Lexing.from_string src in
  lexbuf.Lexing.lex_curr_p <-
    { Lexing.pos_fname = ""; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
  lexbuf

(* The span of the token just returned. Strings and comments run across
   several lexemes; [construct_start] pins their true start. *)
let token_span lexbuf = function
  | STRING_LIT _ -> mkspan !construct_start (Lexing.lexeme_end_p lexbuf)
  | _ -> span_here lexbuf

(* Fresh per-call identifier intern table, pre-seeded with the keywords
   so the token rule resolves keyword-vs-identifier in one lookup. *)
let fresh_interns () = Hashtbl.copy keywords

(** Tokenize a whole source string, pairing each token with its span.
    Raises {!Lex_error} on the first lexical error. *)
let tokenize (src : string) : (Ctoken.t * Diag.span) list =
  let lexbuf = init_lexbuf src in
  let itab = fresh_interns () in
  let rec go acc =
    let t = token itab lexbuf in
    let sp = token_span lexbuf t in
    match t with
    | EOF -> List.rev ((EOF, sp) :: acc)
    | t -> go ((t, sp) :: acc)
  in
  go []

(** Recovering tokenizer: lexical errors become diagnostics. A bad
    character is skipped (the lexer already consumed it); an unterminated
    string or comment necessarily ends the input, so lexing stops there.
    At most [max_errors] diagnostics are produced. *)
let tokenize_partial ?(max_errors = 20) (src : string) :
    (Ctoken.t * Diag.span) list * Diag.t list =
  let lexbuf = init_lexbuf src in
  let itab = fresh_interns () in
  let diags = ref [] in
  let eof_entry () =
    let p = Lexing.lexeme_end_p lexbuf in
    (EOF, mkspan p p)
  in
  let rec go acc =
    match token itab lexbuf with
    | EOF -> List.rev ((EOF, span_here lexbuf) :: acc)
    | t -> go ((t, token_span lexbuf t) :: acc)
    | exception Lex_error d ->
        diags := d :: !diags;
        if List.length !diags >= max_errors then
          List.rev (eof_entry () :: acc)
        else if d.Diag.d_code = "E0101" then go acc
        else (* unterminated construct: input is exhausted *)
          List.rev (eof_entry () :: acc)
  in
  let toks = go [] in
  (toks, List.rev !diags)

(** Allocation-lean recovering tokenizer for the per-unit frontend:
    same tokens, spans, diagnostics, and recovery semantics as
    {!tokenize_partial}, but the result is a flat {!Tokbuf.t} — no cons
    cell, tuple, or span record per token, and identifiers interned so
    repeated names share one boxed token. *)
let tokenize_buf ?(max_errors = 20) (src : string) : Tokbuf.t * Diag.t list =
  let lexbuf = init_lexbuf src in
  let itab = fresh_interns () in
  let diags = ref [] in
  let n_diags = ref 0 in
  let cap = ref (max 64 (String.length src / 8)) in
  let toks = ref (Array.make !cap Ctoken.EOF) in
  let spans = ref (Array.make (4 * !cap) 0) in
  let n = ref 0 in
  let push t sl sc el ec =
    if !n = !cap then begin
      let cap' = 2 * !cap in
      let toks' = Array.make cap' Ctoken.EOF in
      let spans' = Array.make (4 * cap') 0 in
      Array.blit !toks 0 toks' 0 !n;
      Array.blit !spans 0 spans' 0 (4 * !n);
      cap := cap';
      toks := toks';
      spans := spans'
    end;
    let o = 4 * !n in
    !toks.(!n) <- t;
    !spans.(o) <- sl;
    !spans.(o + 1) <- sc;
    !spans.(o + 2) <- el;
    !spans.(o + 3) <- ec
  in
  let push_tok t =
    (* the span components of [mkspan], written without the record *)
    let s =
      match t with
      | STRING_LIT _ -> !construct_start
      | _ -> Lexing.lexeme_start_p lexbuf
    in
    let e = Lexing.lexeme_end_p lexbuf in
    let sc = col_of s in
    push t s.Lexing.pos_lnum sc e.Lexing.pos_lnum (max (col_of e - 1) sc);
    incr n
  in
  let push_eof_at p =
    let c = col_of p in
    push EOF p.Lexing.pos_lnum c p.Lexing.pos_lnum c;
    incr n
  in
  let rec go () =
    match token itab lexbuf with
    | EOF -> push_tok EOF
    | t ->
        push_tok t;
        go ()
    | exception Lex_error d ->
        diags := d :: !diags;
        incr n_diags;
        if !n_diags >= max_errors then push_eof_at (Lexing.lexeme_end_p lexbuf)
        else if d.Diag.d_code = "E0101" then go ()
        else (* unterminated construct: input is exhausted *)
          push_eof_at (Lexing.lexeme_end_p lexbuf)
  in
  go ();
  ( { Tokbuf.toks = !toks; spans = !spans; n = !n; interns = itab },
    List.rev !diags )
}
