(** Recursive-descent parser for the mini-C language.

    Covers the ANSI C declaration syntax the paper's const study needs:
    full declarators (pointers with per-star qualifiers, arrays, function
    pointers, parenthesized declarators), struct/union/enum definitions,
    typedefs (names tracked so casts and declarations disambiguate), the
    whole C expression grammar with correct precedence, and the usual
    statements. Menhir is not available in this environment, so the parser
    is hand-written over the ocamllex token stream. *)

open Cast

exception Parse_error of string * Diag.span

type st = {
  t_toks : Ctoken.t array;  (* flat token array; last entry is EOF *)
  t_spans : int array;  (* 4 ints per token (sl, sc, el, ec); spans are
                           rebuilt lazily, only on paths that report them *)
  t_len : int;
  mutable pos : int;
  typedefs : (string, unit) Hashtbl.t;
  enum_consts : (string, int) Hashtbl.t;
  mutable anon : int;
  recover : bool;
      (* panic-mode recovery: function bodies that fail to parse demote to
         prototypes instead of aborting the file *)
  mutable diags : Diag.t list;  (* reverse order *)
  mutable n_diags : int;  (* List.length diags, maintained incrementally *)
  mutable degraded : (string * string) list;  (* (function, reason) *)
  mutable new_typedefs : string list;
      (* typedef names registered while parsing, newest first: the unit's
         typedef exports, replayed into the link environment *)
  mutable new_enums : (string * int) list;
      (* enum constants registered while parsing, newest first *)
  mutable last_params : (string * Diag.span) list;
      (* name spans of the parameter list parsed most recently — set by
         [parse_params] on completion, so after a declarator like
         [int foo(int a, char *b)] it holds a's and b's name spans. Inner
         (function-pointer) parameter lists finish before the enclosing
         one, which overwrites them; [parse_global] re-aligns by name and
         falls back to (0,0) on any mismatch. *)
}

(* A unit parse may be seeded with the accumulated environment of the
   units linked before it: their typedef and enum-constant exports and
   the running anonymous-tag counter, so [struct$N] numbering and
   typedef-sensitive disambiguation match a whole-program parse. *)
let make_state_tb ?(recover = false) ?(typedefs = []) ?(enums = [])
    ?(anon = 0) (tb : Tokbuf.t) =
  let tds = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace tds n ()) typedefs;
  let ecs = Hashtbl.create 16 in
  List.iter (fun (n, v) -> Hashtbl.replace ecs n v) enums;
  {
    t_toks = tb.Tokbuf.toks;
    t_spans = tb.Tokbuf.spans;
    t_len = tb.Tokbuf.n;
    pos = 0;
    typedefs = tds;
    enum_consts = ecs;
    anon;
    recover;
    diags = [];
    n_diags = 0;
    degraded = [];
    new_typedefs = [];
    new_enums = [];
    last_params = [];
  }

let make_state ?(recover = false) toks =
  make_state_tb ~recover (Tokbuf.of_list toks)

let add_diag st d =
  st.diags <- d :: st.diags;
  st.n_diags <- st.n_diags + 1

let peek st = st.t_toks.(st.pos)
let peek2 st =
  if st.pos + 1 < st.t_len then st.t_toks.(st.pos + 1) else Ctoken.EOF

let span st : Diag.span =
  let o = 4 * st.pos in
  {
    Diag.sl = st.t_spans.(o);
    sc = st.t_spans.(o + 1);
    el = st.t_spans.(o + 2);
    ec = st.t_spans.(o + 3);
  }

let line st = st.t_spans.(4 * st.pos)

let next st =
  let t = st.t_toks.(st.pos) in
  if st.pos + 1 < st.t_len then st.pos <- st.pos + 1;
  t

let err st msg = raise (Parse_error (msg, span st))

let expect st t =
  let sp = span st in
  let got = next st in
  if got <> t then
    raise
      (Parse_error
         ( Printf.sprintf "expected `%s', got `%s'" (Ctoken.to_string t)
             (Ctoken.to_string got),
           sp ))

let ident st =
  let sp = span st in
  match next st with
  | Ctoken.IDENT x -> x
  | t ->
      raise
        (Parse_error
           ( Printf.sprintf "expected identifier, got `%s'"
               (Ctoken.to_string t),
             sp ))

let fresh_anon st prefix =
  st.anon <- st.anon + 1;
  Printf.sprintf "%s$%d" prefix st.anon

let is_typedef st name = Hashtbl.mem st.typedefs name

let register_typedef st name =
  Hashtbl.replace st.typedefs name ();
  st.new_typedefs <- name :: st.new_typedefs

let register_enum_const st name v =
  Hashtbl.replace st.enum_consts name v;
  st.new_enums <- (name, v) :: st.new_enums

(* Does the current token start a type (decl-specs)? *)
let starts_type st =
  match peek st with
  | Ctoken.KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT
  | KW_DOUBLE | KW_SIGNED | KW_UNSIGNED | KW_CONST | KW_VOLATILE | KW_STRUCT
  | KW_UNION | KW_ENUM | KW_TYPEDEF | KW_STATIC | KW_EXTERN | KW_REGISTER
  | KW_AUTO | QUALNAME _ ->
      true
  | IDENT x -> is_typedef st x
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Declaration specifiers                                              *)
(* ------------------------------------------------------------------ *)

type specs = {
  base : ctype;
  s_typedef : bool;
  s_static : bool;
  s_extern : bool;
}

(* binary operators by precedence level, loosest first *)
let binop_levels =
  [|
    [ (Ctoken.BARBAR, LOr) ];
    [ (Ctoken.AMPAMP, LAnd) ];
    [ (Ctoken.BAR, BOr) ];
    [ (Ctoken.CARET, BXor) ];
    [ (Ctoken.AMP, BAnd) ];
    [ (Ctoken.EQEQ, Eq); (Ctoken.NE, Ne) ];
    [ (Ctoken.LT, Lt); (Ctoken.GT, Gt); (Ctoken.LE, Le); (Ctoken.GE, Ge) ];
    [ (Ctoken.SHL, Shl); (Ctoken.SHR, Shr) ];
    [ (Ctoken.PLUS, Add); (Ctoken.MINUS, Sub) ];
    [ (Ctoken.STAR, Mul); (Ctoken.SLASH, Div); (Ctoken.PERCENT, Mod) ];
  |]

(* Struct/union/enum definitions encountered inside decl-specs are hoisted
   out as extra globals; the caller collects them. *)
let rec parse_decl_specs st (hoist : global list ref) : specs =
  let quals = ref [] in
  let signed = ref None in
  let base = ref None in
  let long_count = ref 0 in
  let is_typedef_kw = ref false in
  let is_static = ref false in
  let is_extern = ref false in
  let set_base b =
    match !base with
    | None -> base := Some b
    | Some _ -> err st "two base types in declaration"
  in
  let continue_ = ref true in
  while !continue_ do
    (match peek st with
    | Ctoken.KW_CONST ->
        ignore (next st);
        quals := add_qual "const" !quals
    | QUALNAME q ->
        ignore (next st);
        quals := add_qual q !quals
    | KW_VOLATILE | KW_REGISTER | KW_AUTO -> ignore (next st)
    | KW_TYPEDEF ->
        ignore (next st);
        is_typedef_kw := true
    | KW_STATIC ->
        ignore (next st);
        is_static := true
    | KW_EXTERN ->
        ignore (next st);
        is_extern := true
    | KW_VOID ->
        ignore (next st);
        set_base `Void
    | KW_CHAR ->
        ignore (next st);
        set_base `Char
    | KW_SHORT ->
        ignore (next st);
        set_base `Short
    | KW_INT -> (
        ignore (next st);
        match !base with
        | Some (`Short | `Long) | None ->
            if !base = None then set_base `Int
        | Some _ -> err st "two base types in declaration")
    | KW_LONG ->
        ignore (next st);
        incr long_count;
        if !base = None || !base = Some `Int then base := Some `Long
    | KW_FLOAT ->
        ignore (next st);
        set_base `Float
    | KW_DOUBLE ->
        ignore (next st);
        set_base `Double
    | KW_SIGNED ->
        ignore (next st);
        signed := Some true
    | KW_UNSIGNED ->
        ignore (next st);
        signed := Some false
    | KW_STRUCT | KW_UNION ->
        let is_union = peek st = KW_UNION in
        ignore (next st);
        let tag =
          match peek st with
          | IDENT x ->
              ignore (next st);
              x
          | _ -> fresh_anon st (if is_union then "union" else "struct")
        in
        if peek st = LBRACE then begin
          let fields = parse_fields st hoist in
          hoist := GComp (tag, is_union, fields, line st) :: !hoist
        end;
        set_base (`Struct tag)
    | KW_ENUM ->
        ignore (next st);
        let tag =
          match peek st with
          | IDENT x ->
              ignore (next st);
              x
          | _ -> fresh_anon st "enum"
        in
        if peek st = LBRACE then begin
          ignore (next st);
          let items = ref [] in
          let v = ref 0 in
          let rec items_loop () =
            match peek st with
            | RBRACE -> ignore (next st)
            | IDENT x ->
                ignore (next st);
                (match peek st with
                | ASSIGN ->
                    ignore (next st);
                    (* constant expressions: integer literal, possibly
                       negated, or a previously defined enum constant *)
                    let value =
                      match next st with
                      | INT_LIT n -> n
                      | MINUS -> (
                          match next st with
                          | INT_LIT n -> -n
                          | _ -> err st "expected integer in enum")
                      | IDENT y -> (
                          match Hashtbl.find_opt st.enum_consts y with
                          | Some n -> n
                          | None -> err st "unknown enum constant")
                      | _ -> err st "expected constant in enum"
                    in
                    v := value
                | _ -> ());
                register_enum_const st x !v;
                items := (x, !v) :: !items;
                incr v;
                (match peek st with
                | COMMA -> ignore (next st)
                | _ -> ());
                items_loop ()
            | _ -> err st "bad enum body"
          in
          items_loop ();
          hoist := GEnum (tag, List.rev !items, line st) :: !hoist
        end;
        (* enums are ints for the analysis *)
        set_base `Int
    | IDENT x when is_typedef st x && !base = None && !signed = None ->
        ignore (next st);
        set_base (`Named x)
    | _ -> continue_ := false);
    if !base <> None && not (starts_spec_continuation st) then continue_ := false
  done;
  let q = List.sort_uniq compare !quals in
  let ikind_of b =
    match (b, !signed) with
    | `Char, Some false -> IUChar
    | `Char, _ -> IChar
    | `Short, Some false -> IUShort
    | `Short, _ -> IShort
    | `Int, Some false -> IUInt
    | `Int, _ -> IInt
    | `Long, Some false -> IULong
    | `Long, _ -> ILong
    | _ -> IInt
  in
  let base_t =
    match !base with
    | Some `Void -> TVoid q
    | Some ((`Char | `Short | `Int | `Long) as b) -> TInt (ikind_of b, q)
    | Some `Float -> TFloat (FFloat, q)
    | Some `Double -> TFloat (FDouble, q)
    | Some (`Struct tag) -> TStruct (tag, q)
    | Some (`Named x) -> TNamed (x, q)
    | None ->
        if !signed <> None || !long_count > 0 then TInt (ikind_of `Int, q)
        else TInt (IInt, q) (* implicit int, as in K&R C *)
  in
  {
    base = base_t;
    s_typedef = !is_typedef_kw;
    s_static = !is_static;
    s_extern = !is_extern;
  }

and starts_spec_continuation st =
  (* after a base type, only qualifiers/storage may continue the specs *)
  match peek st with
  | Ctoken.KW_CONST | KW_VOLATILE | QUALNAME _ | KW_TYPEDEF | KW_STATIC
  | KW_EXTERN | KW_REGISTER | KW_AUTO | KW_UNSIGNED | KW_SIGNED | KW_LONG
  | KW_INT ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Declarators                                                         *)
(* ------------------------------------------------------------------ *)

(* A parsed declarator: optional name (with the span of its defining
   token, anchoring the report's position keys) plus a function that
   wraps the base type into the declared type (the standard inside-out
   construction). *)
and parse_declarator st (hoist : global list ref) :
    (string * Diag.span) option * (ctype -> ctype) =
  (* pointer prefix: each star may carry its own qualifiers *)
  let rec ptrs acc =
    match peek st with
    | Ctoken.STAR ->
        ignore (next st);
        let rec qs acc =
          match peek st with
          | Ctoken.KW_CONST ->
              ignore (next st);
              qs (add_qual "const" acc)
          | QUALNAME q ->
              ignore (next st);
              qs (add_qual q acc)
          | KW_VOLATILE ->
              ignore (next st);
              qs acc
          | _ -> acc
        in
        ptrs (qs no_quals :: acc)
    | _ -> acc
  in
  let ptr_quals = ptrs [] in
  (* ptr_quals is reversed source order (head = last star); the first star
     in source order is the innermost pointer, so fold source order left *)
  let apply_ptrs b =
    List.fold_left (fun t q -> TPtr (t, q)) b (List.rev ptr_quals)
  in
  (* direct declarator *)
  let name, wrap_direct =
    match peek st with
    | Ctoken.IDENT x ->
        let sp = span st in
        ignore (next st);
        (Some (x, sp), fun t -> t)
    | LPAREN when is_nested_declarator st ->
        ignore (next st);
        let n, w = parse_declarator st hoist in
        expect st RPAREN;
        (n, w)
    | _ -> (None, fun t -> t)
    (* abstract declarator *)
  in
  (* suffixes *)
  let rec suffixes acc =
    match peek st with
    | Ctoken.LBRACKET ->
        ignore (next st);
        let n =
          match peek st with
          | INT_LIT n ->
              ignore (next st);
              Some n
          | IDENT x when Hashtbl.mem st.enum_consts x ->
              ignore (next st);
              Some (Hashtbl.find st.enum_consts x)
          | RBRACKET -> None
          | _ ->
              (* skip a constant expression we do not evaluate *)
              skip_until_bracket st;
              None
        in
        expect st RBRACKET;
        suffixes (`Arr n :: acc)
    | LPAREN ->
        ignore (next st);
        let params, varargs = parse_params st hoist in
        expect st RPAREN;
        suffixes (`Fn (params, varargs) :: acc)
    | _ -> List.rev acc
  in
  let sfx = suffixes [] in
  (* the first suffix in source order is outermost: a[2][3] is array 2 of
     array 3 of the base *)
  let apply_suffixes b =
    List.fold_right
      (fun s inner ->
        match s with
        | `Arr n -> TArray (inner, n, no_quals)
        | `Fn (ps, va) -> TFun (inner, ps, va))
      sfx b
  in
  (name, fun base -> wrap_direct (apply_suffixes (apply_ptrs base)))

and skip_until_bracket st =
  let depth = ref 0 in
  let rec go () =
    match peek st with
    | Ctoken.RBRACKET when !depth = 0 -> ()
    | LBRACKET ->
        incr depth;
        ignore (next st);
        go ()
    | RBRACKET ->
        decr depth;
        ignore (next st);
        go ()
    | EOF -> err st "unterminated ["
    | _ ->
        ignore (next st);
        go ()
  in
  go ()

(* '(' just consumed-to-be: decide nested declarator vs parameter list *)
and is_nested_declarator st =
  match peek2 st with
  | Ctoken.STAR | LPAREN -> true
  | IDENT x -> not (is_typedef st x)
  | _ -> false

and parse_params st hoist : (string * ctype) list * bool =
  let finish acc varargs =
    let params = List.rev acc in
    st.last_params <-
      List.filter_map
        (fun (name, _, sp) -> Option.map (fun sp -> (name, sp)) sp)
        params;
    (List.map (fun (name, t, _) -> (name, t)) params, varargs)
  in
  match peek st with
  | Ctoken.RPAREN -> finish [] false
  | KW_VOID when peek2 st = RPAREN ->
      ignore (next st);
      finish [] false
  | _ ->
      let rec go acc =
        match peek st with
        | Ctoken.ELLIPSIS ->
            ignore (next st);
            finish acc true
        | _ ->
            let specs = parse_decl_specs st hoist in
            let name, wrap = parse_declarator st hoist in
            let t = wrap specs.base in
            let name, sp =
              match name with
              | Some (n, sp) -> (n, Some sp)
              | None -> (Printf.sprintf "$p%d" (List.length acc), None)
            in
            let acc = (name, t, sp) :: acc in
            if peek st = COMMA then begin
              ignore (next st);
              go acc
            end
            else finish acc false
      in
      go []

and parse_fields st hoist : (string * ctype) list =
  expect st LBRACE;
  let fields = ref [] in
  while peek st <> RBRACE do
    let specs = parse_decl_specs st hoist in
    (* bitfields and multiple declarators *)
    let rec decls () =
      let name, wrap = parse_declarator st hoist in
      let bitfield =
        match peek st with
        | COLON ->
            (* bitfield width: skip the constant *)
            ignore (next st);
            (match next st with
            | INT_LIT _ -> ()
            | IDENT _ -> ()
            | _ -> err st "bad bitfield width");
            true
        | _ -> false
      in
      (match name with
      | Some (n, _) -> fields := (n, wrap specs.base) :: !fields
      | None ->
          (* only anonymous bitfields may omit the field name *)
          if not bitfield then err st "struct field without a name");
      match peek st with
      | COMMA ->
          ignore (next st);
          decls ()
      | _ -> ()
    in
    decls ();
    expect st SEMI
  done;
  expect st RBRACE;
  List.rev !fields

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

and parse_type_name st hoist : ctype =
  let specs = parse_decl_specs st hoist in
  let _, wrap = parse_declarator st hoist in
  wrap specs.base

and parse_expr st hoist : expr =
  let e = parse_assign st hoist in
  match peek st with
  | Ctoken.COMMA ->
      ignore (next st);
      EComma (e, parse_expr st hoist)
  | _ -> e

and parse_assign st hoist : expr =
  let lhs = parse_cond st hoist in
  let mk op =
    ignore (next st);
    let rhs = parse_assign st hoist in
    match op with None -> EAssign (lhs, rhs) | Some b -> EAssignOp (b, lhs, rhs)
  in
  match peek st with
  | Ctoken.ASSIGN -> mk None
  | PLUS_ASSIGN -> mk (Some Add)
  | MINUS_ASSIGN -> mk (Some Sub)
  | STAR_ASSIGN -> mk (Some Mul)
  | SLASH_ASSIGN -> mk (Some Div)
  | PERCENT_ASSIGN -> mk (Some Mod)
  | AMP_ASSIGN -> mk (Some BAnd)
  | BAR_ASSIGN -> mk (Some BOr)
  | CARET_ASSIGN -> mk (Some BXor)
  | SHL_ASSIGN -> mk (Some Shl)
  | SHR_ASSIGN -> mk (Some Shr)
  | _ -> lhs

and parse_cond st hoist : expr =
  let c = parse_binary st hoist 0 in
  match peek st with
  | Ctoken.QUESTION ->
      ignore (next st);
      let e1 = parse_expr st hoist in
      expect st COLON;
      let e2 = parse_cond st hoist in
      ECond (c, e1, e2)
  | _ -> c

and parse_binary st hoist level : expr =
  if level >= Array.length binop_levels then parse_cast_expr st hoist
  else begin
    let ops = binop_levels.(level) in
    let lhs = ref (parse_binary st hoist (level + 1)) in
    let rec go () =
      match List.assoc_opt (peek st) ops with
      | Some op ->
          ignore (next st);
          let rhs = parse_binary st hoist (level + 1) in
          lhs := EBinop (op, !lhs, rhs);
          go ()
      | None -> ()
    in
    go ();
    !lhs
  end

and parse_cast_expr st hoist : expr =
  match peek st with
  | Ctoken.LPAREN when starts_type_at st (st.pos + 1) ->
      ignore (next st);
      let t = parse_type_name st hoist in
      expect st RPAREN;
      (* (T){...} compound literals: treat as cast of init list *)
      if peek st = LBRACE then ECast (t, parse_init st hoist)
      else ECast (t, parse_cast_expr st hoist)
  | _ -> parse_unary st hoist

and starts_type_at st pos =
  if pos >= st.t_len then false
  else
    match st.t_toks.(pos) with
    | Ctoken.KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT
    | KW_DOUBLE | KW_SIGNED | KW_UNSIGNED | KW_CONST | KW_VOLATILE
    | KW_STRUCT | KW_UNION | KW_ENUM | QUALNAME _ ->
        true
    | IDENT x -> is_typedef st x
    | _ -> false

and parse_unary st hoist : expr =
  match peek st with
  | Ctoken.PLUSPLUS ->
      ignore (next st);
      EIncDec (true, true, parse_unary st hoist)
  | MINUSMINUS ->
      ignore (next st);
      EIncDec (true, false, parse_unary st hoist)
  | AMP ->
      ignore (next st);
      EAddr (parse_cast_expr st hoist)
  | STAR ->
      ignore (next st);
      EDeref (parse_cast_expr st hoist)
  | PLUS ->
      ignore (next st);
      parse_cast_expr st hoist
  | MINUS ->
      ignore (next st);
      EUnop (Neg, parse_cast_expr st hoist)
  | BANG ->
      ignore (next st);
      EUnop (Not, parse_cast_expr st hoist)
  | TILDE ->
      ignore (next st);
      EUnop (BitNot, parse_cast_expr st hoist)
  | KW_SIZEOF ->
      ignore (next st);
      if peek st = LPAREN && starts_type_at st (st.pos + 1) then begin
        ignore (next st);
        let t = parse_type_name st hoist in
        expect st RPAREN;
        ESizeofT t
      end
      else ESizeofE (parse_unary st hoist)
  | _ -> parse_postfix st hoist

and parse_postfix st hoist : expr =
  let e = ref (parse_primary st hoist) in
  let rec go () =
    match peek st with
    | Ctoken.LBRACKET ->
        ignore (next st);
        let i = parse_expr st hoist in
        expect st RBRACKET;
        e := EIndex (!e, i);
        go ()
    | LPAREN ->
        ignore (next st);
        let args =
          if peek st = RPAREN then []
          else
            let rec args acc =
              let a = parse_assign st hoist in
              if peek st = COMMA then begin
                ignore (next st);
                args (a :: acc)
              end
              else List.rev (a :: acc)
            in
            args []
        in
        expect st RPAREN;
        e := ECall (!e, args);
        go ()
    | DOT ->
        ignore (next st);
        e := EMember (!e, ident st);
        go ()
    | ARROW ->
        ignore (next st);
        e := EArrow (!e, ident st);
        go ()
    | PLUSPLUS ->
        ignore (next st);
        e := EIncDec (false, true, !e);
        go ()
    | MINUSMINUS ->
        ignore (next st);
        e := EIncDec (false, false, !e);
        go ()
    | _ -> ()
  in
  go ();
  !e

and parse_primary st hoist : expr =
  let sp = span st in
  match next st with
  | Ctoken.INT_LIT n -> EInt n
  | FLOAT_LIT f -> EFloat f
  | CHAR_LIT c -> EChar c
  | STRING_LIT s ->
      (* adjacent string literals concatenate *)
      let buf = Buffer.create (String.length s) in
      Buffer.add_string buf s;
      let rec more () =
        match peek st with
        | STRING_LIT s2 ->
            ignore (next st);
            Buffer.add_string buf s2;
            more ()
        | _ -> ()
      in
      more ();
      EString (Buffer.contents buf)
  | IDENT x -> (
      match Hashtbl.find_opt st.enum_consts x with
      | Some n -> EInt n
      | None -> EVar x)
  | LPAREN ->
      let e = parse_expr st hoist in
      expect st RPAREN;
      e
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "unexpected token `%s'" (Ctoken.to_string t), sp))

and parse_init st hoist : expr =
  match peek st with
  | Ctoken.LBRACE ->
      ignore (next st);
      let items = ref [] in
      let rec go () =
        match peek st with
        | RBRACE -> ignore (next st)
        | _ ->
            (* skip designators: .field = / [i] = *)
            (match peek st with
            | DOT ->
                ignore (next st);
                ignore (ident st);
                expect st ASSIGN
            | LBRACKET ->
                ignore (next st);
                skip_until_bracket st;
                expect st RBRACKET;
                expect st ASSIGN
            | _ -> ());
            items := parse_init st hoist :: !items;
            (match peek st with COMMA -> ignore (next st) | _ -> ());
            go ()
      in
      go ();
      EInitList (List.rev !items)
  | _ -> parse_assign st hoist

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and parse_stmt st hoist : stmt =
  match peek st with
  | Ctoken.SEMI ->
      ignore (next st);
      SNull
  | LBRACE -> SBlock (parse_block st hoist)
  | KW_IF ->
      ignore (next st);
      expect st LPAREN;
      let c = parse_expr st hoist in
      expect st RPAREN;
      let s1 = parse_stmt st hoist in
      let s2 =
        if peek st = KW_ELSE then begin
          ignore (next st);
          Some (parse_stmt st hoist)
        end
        else None
      in
      SIf (c, s1, s2)
  | KW_WHILE ->
      ignore (next st);
      expect st LPAREN;
      let c = parse_expr st hoist in
      expect st RPAREN;
      SWhile (c, parse_stmt st hoist)
  | KW_DO ->
      ignore (next st);
      let body = parse_stmt st hoist in
      expect st KW_WHILE;
      expect st LPAREN;
      let c = parse_expr st hoist in
      expect st RPAREN;
      expect st SEMI;
      SDoWhile (body, c)
  | KW_FOR ->
      ignore (next st);
      expect st LPAREN;
      let init =
        if peek st = SEMI then begin
          ignore (next st);
          None
        end
        else if starts_type st then begin
          let ds = parse_local_decl st hoist in
          Some (SDecl ds)
        end
        else begin
          let e = parse_expr st hoist in
          expect st SEMI;
          Some (SExpr e)
        end
      in
      let cond =
        if peek st = SEMI then None else Some (parse_expr st hoist)
      in
      expect st SEMI;
      let step =
        if peek st = RPAREN then None else Some (parse_expr st hoist)
      in
      expect st RPAREN;
      SFor (init, cond, step, parse_stmt st hoist)
  | KW_RETURN ->
      ignore (next st);
      if peek st = SEMI then begin
        ignore (next st);
        SReturn None
      end
      else begin
        let e = parse_expr st hoist in
        expect st SEMI;
        SReturn (Some e)
      end
  | KW_BREAK ->
      ignore (next st);
      expect st SEMI;
      SBreak
  | KW_CONTINUE ->
      ignore (next st);
      expect st SEMI;
      SContinue
  | KW_SWITCH ->
      ignore (next st);
      expect st LPAREN;
      let e = parse_expr st hoist in
      expect st RPAREN;
      SSwitch (e, parse_stmt st hoist)
  | KW_CASE ->
      ignore (next st);
      let e = parse_cond st hoist in
      expect st COLON;
      SCase (e, parse_stmt_or_null st hoist)
  | KW_DEFAULT ->
      ignore (next st);
      expect st COLON;
      SDefault (parse_stmt_or_null st hoist)
  | KW_GOTO ->
      ignore (next st);
      let l = ident st in
      expect st SEMI;
      SGoto l
  | IDENT x when peek2 st = COLON && not (is_typedef st x) ->
      ignore (next st);
      ignore (next st);
      SLabel (x, parse_stmt_or_null st hoist)
  | _ when starts_type st -> SDecl (parse_local_decl st hoist)
  | _ ->
      let e = parse_expr st hoist in
      expect st SEMI;
      SExpr e

and parse_stmt_or_null st hoist =
  (* a case label may be immediately followed by another label or `}' *)
  match peek st with
  | Ctoken.RBRACE | KW_CASE | KW_DEFAULT -> SNull
  | _ -> parse_stmt st hoist

and parse_block st hoist : stmt list =
  expect st LBRACE;
  let stmts = ref [] in
  while peek st <> RBRACE do
    stmts := parse_stmt st hoist :: !stmts
  done;
  expect st RBRACE;
  List.rev !stmts

and parse_local_decl st hoist : decl list =
  let ln = line st in
  let specs = parse_decl_specs st hoist in
  if peek st = SEMI then begin
    (* pure struct/enum declaration inside a function *)
    ignore (next st);
    []
  end
  else begin
    let rec go acc =
      let name, wrap = parse_declarator st hoist in
      let t = wrap specs.base in
      let name =
        match name with
        | Some (n, _) -> n
        | None -> err st "declaration without name"
      in
      let init =
        if peek st = ASSIGN then begin
          ignore (next st);
          Some (parse_init st hoist)
        end
        else None
      in
      if specs.s_typedef then register_typedef st name;
      let acc = { d_name = name; d_type = t; d_init = init; d_line = ln } :: acc in
      match peek st with
      | COMMA ->
          ignore (next st);
          go acc
      | _ ->
          expect st SEMI;
          List.rev acc
    in
    go []
  end

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

(* Skip a balanced {...} starting at the current LBRACE (used to step over
   a function body that failed to parse). Stops at EOF. *)
let skip_balanced_braces st =
  if peek st = Ctoken.LBRACE then begin
    ignore (next st);
    let depth = ref 1 in
    while !depth > 0 && peek st <> Ctoken.EOF do
      (match peek st with
      | Ctoken.LBRACE -> incr depth
      | Ctoken.RBRACE -> decr depth
      | _ -> ());
      ignore (next st)
    done
  end

let parse_global st (hoist : global list ref) : global list =
  let ln = line st in
  let specs = parse_decl_specs st hoist in
  if peek st = SEMI then begin
    (* struct/union/enum definition alone *)
    ignore (next st);
    []
  end
  else begin
    let name, wrap = parse_declarator st hoist in
    let t = wrap specs.base in
    match (name, peek st) with
    | Some (fname, fsp), Ctoken.LBRACE -> (
        (* function definition *)
        match t with
        | TFun (ret, params, varargs) -> (
            (* anchor each parameter at its name token. [last_params]
               holds the most recently completed parameter list, which
               for an exotic declarator (a function returning a function
               pointer) may be an inner one — re-align by name and drop
               to (0,0) on any mismatch, so keys are never mislocated *)
            let param_locs =
              List.map
                (fun (pname, _) ->
                  match List.assoc_opt pname st.last_params with
                  | Some (sp : Diag.span) -> (sp.Diag.sl, sp.Diag.sc)
                  | None -> (0, 0))
                params
            in
            let mk body =
              [
                GFun
                  {
                    f_name = fname;
                    f_ret = ret;
                    f_params = params;
                    f_varargs = varargs;
                    f_body = body;
                    f_static = specs.s_static;
                    f_line = ln;
                    f_name_loc = (fsp.Diag.sl, fsp.Diag.sc);
                    f_param_locs = param_locs;
                  };
              ]
            in
            if not st.recover then mk (parse_block st hoist)
            else
              (* fault isolation: a body that fails to parse demotes the
                 function to a prototype (analyzed like a library function,
                 which is conservative) rather than poisoning the file *)
              let brace = st.pos in
              match parse_block st hoist with
              | body -> mk body
              | exception Parse_error (m, sp) ->
                  add_diag st (Diag.error ~code:"E0202" sp m);
                  st.degraded <-
                    (fname, Printf.sprintf "body failed to parse: %s" m)
                    :: st.degraded;
                  st.pos <- brace;
                  skip_balanced_braces st;
                  [ GProto (fname, t, ln) ])
        | _ -> err st "function body after non-function declarator")
    | Some (n, _), _ ->
        let rec go acc name t =
          let init =
            if peek st = ASSIGN then begin
              ignore (next st);
              Some (parse_init st hoist)
            end
            else None
          in
          let g =
            if specs.s_typedef then begin
              register_typedef st name;
              GTypedef (name, t, ln)
            end
            else
              match t with
              | TFun _ -> GProto (name, t, ln)
              | _ -> GVar { d_name = name; d_type = t; d_init = init; d_line = ln }
          in
          let acc = g :: acc in
          match peek st with
          | COMMA ->
              ignore (next st);
              let name2, wrap2 = parse_declarator st hoist in
              let name2 =
                match name2 with
                | Some (n, _) -> n
                | None -> err st "declarator without name"
              in
              go acc name2 (wrap2 specs.base)
          | _ ->
              expect st SEMI;
              List.rev acc
        in
        go [] n t
    | None, _ -> err st "declaration without a name"
  end

(** Parse a complete translation unit. Raises {!Parse_error} or
    {!Clexer.Lex_error} on the first error (the strict entry point; the
    resilient pipeline uses {!parse_program_partial}). *)
let parse_program (src : string) : program =
  let toks = Clexer.tokenize src in
  let st = make_state toks in
  let globals = ref [] in
  while peek st <> EOF do
    let hoist = ref [] in
    let gs = parse_global st hoist in
    (* hoisted struct/enum definitions come first *)
    globals := List.rev_append gs (List.rev_append !hoist !globals)
  done;
  List.rev !globals

let parse_program_result src =
  match parse_program src with
  | p -> Ok p
  | exception Parse_error (m, sp) ->
      Error (Fmt.str "%a: %s" Diag.pp_span sp m)
  | exception Clexer.Lex_error d -> Error (Diag.to_string d)

(* ------------------------------------------------------------------ *)
(* Panic-mode recovery                                                 *)
(* ------------------------------------------------------------------ *)

(* Synchronize after a parse error: skip to the next plausible top-level
   declaration boundary. We consume until a `;' or `}' at brace depth 0
   (an unmatched `}' closes whatever construct the error interrupted) or
   until a token that starts a declaration. Stopping at a type-start token
   without consuming anything is safe: the parser only reaches an error
   with a type-start lookahead after consuming at least one token, so the
   outer loop always makes progress. *)
let sync st =
  let depth = ref 0 in
  let stop = ref false in
  while not !stop do
    match peek st with
    | Ctoken.EOF -> stop := true
    | Ctoken.LBRACE ->
        incr depth;
        ignore (next st)
    | Ctoken.RBRACE ->
        if !depth > 0 then begin
          decr depth;
          ignore (next st)
        end
        else begin
          ignore (next st);
          if peek st = Ctoken.SEMI then ignore (next st);
          stop := true
        end
    | Ctoken.SEMI when !depth = 0 ->
        ignore (next st);
        if starts_type st || peek st = Ctoken.EOF then stop := true
    | _ when !depth = 0 && starts_type st -> stop := true
    | _ -> ignore (next st)
  done

type presult = {
  pr_prog : program;  (** every global that parsed *)
  pr_diags : Diag.t list;  (** in source order, lexical errors first *)
  pr_degraded : (string * string) list;
      (** functions demoted to prototypes because their body failed to
          parse, with the reason *)
}

(* The panic-mode top-level loop shared by the whole-program and per-unit
   entry points. [count_base] is how many diagnostics earlier units of
   the same run already consumed: the cap fires when the running total
   reaches [max_errors], but the E0299 note always quotes the caller's
   original budget. Returns [true] when it gave up. *)
let parse_toplevel st ~max_errors ~count_base : program * bool =
  let globals = ref [] in
  let capped = ref false in
  while peek st <> EOF && not !capped do
    let hoist = ref [] in
    (match parse_global st hoist with
    | gs -> globals := List.rev_append gs (List.rev_append !hoist !globals)
    | exception Parse_error (m, sp) ->
        add_diag st (Diag.error ~code:"E0201" sp m);
        (* keep whatever was hoisted before the failure *)
        globals := List.rev_append !hoist !globals;
        sync st);
    if count_base + st.n_diags >= max_errors && peek st <> EOF then begin
      capped := true;
      add_diag st
        (Diag.note ~code:"E0299" (span st)
           (Printf.sprintf
              "too many errors (%d); giving up on the rest of the file"
              max_errors))
    end
  done;
  (List.rev !globals, !capped)

(** Parse with panic-mode error recovery: always returns a (possibly
    partial) program plus the diagnostics encountered, up to
    [max_errors] (default 20; an [E0299] note marks the cutoff). *)
let parse_program_partial ?(max_errors = 20) (src : string) : presult =
  let toks, lex_diags = Clexer.tokenize_partial ~max_errors src in
  let st = make_state ~recover:true toks in
  st.diags <- List.rev lex_diags;
  st.n_diags <- List.length lex_diags;
  let prog, _ = parse_toplevel st ~max_errors ~count_base:0 in
  {
    pr_prog = prog;
    pr_diags = List.rev st.diags;
    pr_degraded = List.rev st.degraded;
  }

(* ------------------------------------------------------------------ *)
(* Per-unit parsing                                                    *)
(* ------------------------------------------------------------------ *)

(** The cross-unit parser environment a unit parse can be seeded with:
    typedef and enum-constant exports of the units linked before it, the
    running anonymous-tag counter, and the number of diagnostics those
    units already consumed from the run's error budget. *)
type useed = {
  us_typedefs : string list;
  us_enums : (string * int) list;
  us_anon : int;
  us_count_base : int;
}

let empty_seed =
  { us_typedefs = []; us_enums = []; us_anon = 0; us_count_base = 0 }

type uresult = {
  ur_pr : presult;
  ur_typedefs : string list;
      (** typedef names this unit registered, in registration order *)
  ur_enums : (string * int) list;
      (** enum constants this unit registered, in registration order *)
  ur_anon : int;  (** anonymous struct/union/enum tags this unit created *)
  ur_idents : string list;
      (** distinct identifiers lexed from the unit: the link step's
          evidence that a speculative (unseeded) parse could not have
          been influenced by earlier units' exports *)
  ur_first_span : Diag.span;
      (** span of the unit's first token — where a whole-program parse
          would report "too many errors" if the budget ran out exactly at
          the boundary before this unit *)
  ur_capped : bool;  (** the unit itself emitted E0299 and gave up *)
}

(** Parse one translation unit over an already-lexed token buffer.
    Seeded with {!empty_seed} this is a speculative, order-independent
    parse; the link step re-invokes it with the real environment only
    when the unit's identifiers overlap earlier exports, the unit mints
    anonymous tags after earlier units did, or the diagnostic budget
    spills across the unit boundary (see DESIGN.md "Per-unit frontend"). *)
let parse_unit ?(max_errors = 20) ?(seed = empty_seed) (tb : Tokbuf.t)
    ~(lex_diags : Diag.t list) : uresult =
  let st =
    make_state_tb ~recover:true ~typedefs:seed.us_typedefs
      ~enums:seed.us_enums ~anon:seed.us_anon tb
  in
  st.diags <- List.rev lex_diags;
  st.n_diags <- List.length lex_diags;
  let first_span =
    if tb.Tokbuf.n > 0 then Tokbuf.span tb 0 else Diag.dummy_span
  in
  let prog, capped =
    parse_toplevel st ~max_errors ~count_base:seed.us_count_base
  in
  {
    ur_pr =
      {
        pr_prog = prog;
        pr_diags = List.rev st.diags;
        pr_degraded = List.rev st.degraded;
      };
    ur_typedefs = List.rev st.new_typedefs;
    ur_enums = List.rev st.new_enums;
    ur_anon = st.anon - seed.us_anon;
    ur_idents = Tokbuf.ident_names tb;
    ur_first_span = first_span;
    ur_capped = capped;
  }
