(** Abstract syntax of the mini-C language (the subject language of the
    paper's Section 4). Every C construct the paper's const-inference
    discussion mentions is present: pointers with per-level qualifiers,
    structs with shared field declarations, typedefs (macro-expanded),
    casts, variadic functions, library prototypes, globals.

    Qualifiers on types are kept as the literal list of source qualifier
    names ([const], plus [$name] user qualifiers per Section 2.5);
    [volatile] and storage classes are parsed and dropped, as they are
    irrelevant to qualifier inference. *)

type quals = string list
(** qualifier names, sorted, no duplicates; [const] is the one Section 4
    analyzes *)

let no_quals : quals = []
let has_qual q (qs : quals) = List.mem q qs
let add_qual q (qs : quals) = if List.mem q qs then qs else List.sort compare (q :: qs)
let merge_quals (a : quals) (b : quals) = List.sort_uniq compare (a @ b)
let is_const qs = has_qual "const" qs

(** C types. Integer kinds are collapsed to {!TInt} with a width tag kept
    only for printing; the qualifier analysis does not distinguish them
    (the paper's translation handles "pointer and integer types"). *)
type ctype =
  | TVoid of quals
  | TInt of ikind * quals
  | TFloat of fkind * quals
  | TPtr of ctype * quals  (** quals qualify the pointer value itself *)
  | TArray of ctype * int option * quals
  | TStruct of string * quals  (** reference to a struct/union tag *)
  | TNamed of string * quals  (** typedef name, expanded before analysis *)
  | TFun of ctype * (string * ctype) list * bool  (** return, params, varargs *)

and ikind = IChar | IShort | IInt | ILong | IUChar | IUShort | IUInt | IULong
and fkind = FFloat | FDouble

type unop = Neg | Not | BitNot

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | BAnd | BOr | BXor
  | Lt | Gt | Le | Ge | Eq | Ne
  | LAnd | LOr

type expr =
  | EInt of int
  | EFloat of float
  | EChar of char
  | EString of string
  | EVar of string
  | EUnop of unop * expr
  | EBinop of binop * expr * expr
  | EAssign of expr * expr
  | EAssignOp of binop * expr * expr  (** [e1 op= e2] *)
  | EIncDec of bool * bool * expr  (** pre?, inc?, lvalue *)
  | ECond of expr * expr * expr
  | EComma of expr * expr
  | ECall of expr * expr list
  | EIndex of expr * expr
  | EMember of expr * string  (** [e.f] *)
  | EArrow of expr * string  (** [e->f] *)
  | ECast of ctype * expr
  | ESizeofT of ctype
  | ESizeofE of expr
  | EAddr of expr  (** [&e] *)
  | EDeref of expr  (** [*e] *)
  | EInitList of expr list  (** brace initializer *)

type decl = {
  d_name : string;
  d_type : ctype;
  d_init : expr option;
  d_line : int;
}

type stmt =
  | SExpr of expr
  | SDecl of decl list
  | SBlock of stmt list
  | SIf of expr * stmt * stmt option
  | SWhile of expr * stmt
  | SDoWhile of stmt * expr
  | SFor of stmt option * expr option * expr option * stmt
      (** init is a decl or expression statement *)
  | SReturn of expr option
  | SBreak
  | SContinue
  | SSwitch of expr * stmt
  | SCase of expr * stmt
  | SDefault of stmt
  | SLabel of string * stmt
  | SGoto of string
  | SNull

type fundef = {
  f_name : string;
  f_ret : ctype;
  f_params : (string * ctype) list;
  f_varargs : bool;
  f_body : stmt list;
  f_static : bool;
  f_line : int;
  f_name_loc : int * int;
      (** (line, column) of the defining occurrence of [f_name]; column 0
          when only line precision is available (cf. {!Diag.span}) *)
  f_param_locs : (int * int) list;
      (** (line, column) of each parameter's name, aligned with
          [f_params]; (0, 0) for unnamed or unlocatable parameters.
          These anchor the report's stable position keys
          ([file:line:col]), so a position survives marshaling without
          its solver-variable back-pointer. *)
}

type global =
  | GVar of decl
  | GFun of fundef
  | GProto of string * ctype * int  (** name, TFun type, line *)
  | GTypedef of string * ctype * int
  | GComp of string * bool * (string * ctype) list * int
      (** tag, is_union, fields, line — struct/union definition *)
  | GEnum of string * (string * int) list * int

type program = global list

(* ------------------------------------------------------------------ *)
(* Type utilities                                                      *)
(* ------------------------------------------------------------------ *)

let quals_of = function
  | TVoid q | TInt (_, q) | TFloat (_, q) | TPtr (_, q) | TArray (_, _, q)
  | TStruct (_, q) | TNamed (_, q) ->
      q
  | TFun _ -> no_quals

let set_quals q = function
  | TVoid _ -> TVoid q
  | TInt (k, _) -> TInt (k, q)
  | TFloat (k, _) -> TFloat (k, q)
  | TPtr (t, _) -> TPtr (t, q)
  | TArray (t, n, _) -> TArray (t, n, q)
  | TStruct (s, _) -> TStruct (s, q)
  | TNamed (s, _) -> TNamed (s, q)
  | TFun _ as t -> t

let add_quals extra t = set_quals (merge_quals extra (quals_of t)) t

let is_pointer = function
  | TPtr _ | TArray _ -> true
  | TNamed _ -> false (* callers expand typedefs first *)
  | TFun _ | TVoid _ | TInt _ | TFloat _ | TStruct _ -> false

let pointer_target = function
  | TPtr (t, _) -> Some t
  | TArray (t, _, _) -> Some t
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_quals ppf (qs : quals) =
  List.iter
    (fun q ->
      if String.length q > 0 && q.[0] <> '$' && q <> "const" then
        Fmt.pf ppf "$%s " q
      else Fmt.pf ppf "%s " q)
    qs

let ikind_name = function
  | IChar -> "char"
  | IShort -> "short"
  | IInt -> "int"
  | ILong -> "long"
  | IUChar -> "unsigned char"
  | IUShort -> "unsigned short"
  | IUInt -> "unsigned int"
  | IULong -> "unsigned long"

let rec pp_ctype ppf = function
  | TVoid q -> Fmt.pf ppf "%avoid" pp_quals q
  | TInt (k, q) -> Fmt.pf ppf "%a%s" pp_quals q (ikind_name k)
  | TFloat (FFloat, q) -> Fmt.pf ppf "%afloat" pp_quals q
  | TFloat (FDouble, q) -> Fmt.pf ppf "%adouble" pp_quals q
  | TPtr (t, q) -> Fmt.pf ppf "%a*%a" pp_ctype t pp_quals q
  | TArray (t, Some n, q) -> Fmt.pf ppf "%a%a[%d]" pp_quals q pp_ctype t n
  | TArray (t, None, q) -> Fmt.pf ppf "%a%a[]" pp_quals q pp_ctype t
  | TStruct (s, q) -> Fmt.pf ppf "%astruct %s" pp_quals q s
  | TNamed (s, q) -> Fmt.pf ppf "%a%s" pp_quals q s
  | TFun (r, ps, va) ->
      Fmt.pf ppf "%a(%a%s)" pp_ctype r
        Fmt.(list ~sep:comma (fun ppf (_, t) -> pp_ctype ppf t))
        ps
        (if va then ", ..." else "")

let ctype_to_string t = Fmt.str "%a" pp_ctype t

(* ------------------------------------------------------------------ *)
(* Traversal helpers                                                   *)
(* ------------------------------------------------------------------ *)

(** Fold over every expression in a statement (pre-order). *)
let rec fold_stmt_exprs f acc = function
  | SExpr e -> f acc e
  | SDecl ds ->
      List.fold_left
        (fun acc d -> match d.d_init with Some e -> f acc e | None -> acc)
        acc ds
  | SBlock ss -> List.fold_left (fold_stmt_exprs f) acc ss
  | SIf (e, s1, s2) ->
      let acc = f acc e in
      let acc = fold_stmt_exprs f acc s1 in
      Option.fold ~none:acc ~some:(fold_stmt_exprs f acc) s2
  | SWhile (e, s) -> fold_stmt_exprs f (f acc e) s
  | SDoWhile (s, e) -> f (fold_stmt_exprs f acc s) e
  | SFor (init, cond, step, body) ->
      let acc = Option.fold ~none:acc ~some:(fold_stmt_exprs f acc) init in
      let acc = Option.fold ~none:acc ~some:(f acc) cond in
      let acc = Option.fold ~none:acc ~some:(f acc) step in
      fold_stmt_exprs f acc body
  | SReturn (Some e) -> f acc e
  | SReturn None | SBreak | SContinue | SGoto _ | SNull -> acc
  | SSwitch (e, s) -> fold_stmt_exprs f (f acc e) s
  | SCase (e, s) -> fold_stmt_exprs f (f acc e) s
  | SDefault s | SLabel (_, s) -> fold_stmt_exprs f acc s

(** All identifiers referenced in an expression (for the FDG). *)
let rec expr_idents acc = function
  | EInt _ | EFloat _ | EChar _ | EString _ | ESizeofT _ -> acc
  | EVar x -> x :: acc
  | EUnop (_, e) | ECast (_, e) | ESizeofE e | EAddr e | EDeref e
  | EIncDec (_, _, e) ->
      expr_idents acc e
  | EBinop (_, a, b) | EAssign (a, b) | EAssignOp (_, a, b) | EComma (a, b)
  | EIndex (a, b) ->
      expr_idents (expr_idents acc a) b
  | ECond (a, b, c) -> expr_idents (expr_idents (expr_idents acc a) b) c
  | ECall (f, args) -> List.fold_left expr_idents (expr_idents acc f) args
  | EMember (e, _) | EArrow (e, _) -> expr_idents acc e
  | EInitList es -> List.fold_left expr_idents acc es
