(** Qualified type inference for the example language (Sections 2.3, 3.1,
    3.2).

    The inference is algorithmic: it performs standard shape unification
    while emitting atomic qualifier constraints into a {!Typequal.Solver}
    store, with subsumption folded into the flow edges. Qualifier-specific
    semantics are supplied as {e hooks} — the paper's "each qualifier comes
    with rules that describe how the qualifier interacts with the
    operations in the language" — attached at exactly the choice points the
    paper identifies (the arbitrary [Q]s in the rules of Figure 4b, e.g.
    the assignment rule (Assign') for [const]).

    Two entry points: {!infer} (monomorphic, Section 3.1) and with
    [~poly:true] the let-polymorphic system of Section 3.2 ((Letv)/(Var'),
    value restriction, existential binding of scheme-local variables). *)

module Solver = Typequal.Solver
module Lattice = Typequal.Lattice
module Elt = Lattice.Elt
module Space = Lattice.Space

exception Infer_error of string

(** Qualifier-specific rule hooks. Every hook receives the store and may
    emit additional constraints. [no_hooks] leaves the framework rules
    exactly as constructed by the generic translation of Section 3.1. *)
type hooks = {
  on_assign : Solver.t -> Solver.var -> unit;
      (** called with the qualifier of the [ref] being assigned; const pins
          it below [not const] (rule (Assign') of Section 2.4) *)
  on_deref : Solver.t -> Solver.var -> unit;
      (** called with the qualifier of the [ref] being read (e.g. nonnull) *)
  on_app : Solver.t -> Solver.var -> unit;
      (** called with the qualifier of the applied function *)
  on_if_guard : Solver.t -> Solver.var -> unit;
      (** called with the qualifier of an [if] guard *)
  on_div : Solver.t -> Solver.var -> unit;
      (** called with the qualifier of a divisor (e.g. nonzero) *)
  on_int : Solver.t -> int -> Solver.var -> unit;
      (** called with each integer literal and its qualifier; the generic
          rule (Int) gives literals bottom, but a qualifier designer may
          refine it (e.g. nonzero pins the literal's truthful zero-ness) *)
  on_binop :
    Solver.t -> Ast.binop -> Solver.var -> Solver.var -> Solver.var -> unit;
      (** called with the operator and the qualifiers of both operands and
          the result; e.g. taint joins the operand qualifiers into the
          result *)
  on_construct : Solver.t -> Qtype.t -> unit;
      (** called on each constructed type node (Fun/Ref results), for
          well-formedness conditions such as binding-time's "nothing
          dynamic inside static" *)
}

let nop _ _ = ()

let no_hooks =
  {
    on_assign = nop;
    on_deref = nop;
    on_app = nop;
    on_if_guard = nop;
    on_div = nop;
    on_int = (fun _ _ _ -> ());
    on_binop = (fun _ _ _ _ _ -> ());
    on_construct = nop;
  }

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)
(* ------------------------------------------------------------------ *)

type scheme_entry = {
  sch : Solver.scheme;
  body : Qtype.t;  (** references the scheme's local variables *)
}

type entry = Mono of Qtype.t | Poly of scheme_entry
type env = (string * entry) list

(* Qualifier variables reachable from the environment: these must never be
   generalized. For Poly entries the scheme's own locals are bound, but its
   free variables are not. *)
let env_qvars (env : env) =
  let tbl = Hashtbl.create 32 in
  let add v = Hashtbl.replace tbl (Solver.var_id v) () in
  List.iter
    (fun (_, entry) ->
      match entry with
      | Mono t -> List.iter add (Qtype.qvars t)
      | Poly { sch; body } ->
          let locals = Hashtbl.create 8 in
          List.iter
            (fun v -> Hashtbl.replace locals (Solver.var_id v) ())
            (Solver.scheme_locals sch);
          let add_free v =
            if not (Hashtbl.mem locals (Solver.var_id v)) then add v
          in
          List.iter add_free (Qtype.qvars body);
          List.iter
            (fun atom ->
              match atom with
              | Solver.Avc (v, _, _, _) | Solver.Acv (_, v, _, _) ->
                  add_free v
              | Solver.Avv (a, b, _, _) ->
                  add_free a;
                  add_free b)
            (Solver.scheme_atoms sch))
    env;
  tbl

(* ------------------------------------------------------------------ *)
(* Elaborating qualifier specifications                                *)
(* ------------------------------------------------------------------ *)

let override sp base spec =
  List.fold_left
    (fun acc (name, present) ->
      match Space.resolve sp name with
      | None -> raise (Infer_error ("unknown qualifier " ^ name))
      | Some (`Qual i) ->
          if present then Elt.set sp i acc else Elt.clear sp i acc
      | Some (`Level (i, l)) ->
          (* a level name of an ordered coordinate pins the coordinate to
             exactly that level (annotations: the value's level; assertion
             bounds: at most that level). [~level] has no principal
             meaning in a general lattice — name the bounding level. *)
          if present then Elt.with_level sp i l acc
          else
            raise
              (Infer_error
                 ("cannot negate level " ^ name
                ^ "; bound by naming the level itself, e.g. |[" ^ name ^ "]")))
    base spec

(** Annotation constant: listed coordinates overridden, others at their
    sub-lattice bottom ("any new top-level qualifier is bottom",
    Section 2.2). *)
let annot_elt sp spec = override sp (Elt.bottom sp) spec

(** Assertion bound: listed coordinates overridden, others unconstrained
    (at top). Writing [~const] yields exactly the paper's [¬const]. *)
let assert_elt sp spec = override sp (Elt.top sp) spec

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)
(* ------------------------------------------------------------------ *)

type state = {
  store : Solver.t;
  hooks : hooks;
  poly : bool;
  compact : bool;
      (** compact schemes at (Letv) generalization; observationally
          invisible (default on) *)
  subf : ?reason:string -> Solver.t -> Qtype.t -> Qtype.t -> unit;
      (** subtype decomposition: {!Qtype.sub} normally, or the deliberately
          unsound covariant-ref variant for the ablation study *)
}

let rec infer_expr st (env : env) (e : Ast.expr) : Qtype.t =
  let store = st.store in
  let sp = Solver.space store in
  match e with
  | Var x -> (
      match List.assoc_opt x env with
      | None -> raise (Infer_error ("unbound variable " ^ x))
      | Some (Mono t) -> t
      | Some (Poly { sch; body }) ->
          (* (Var'): instantiate the constrained scheme — rename all scheme
             locals, re-emit the captured constraints, copy the body type
             through the renaming. *)
          let rn = Solver.instantiate store sch in
          Qtype.rename_copy rn body)
  | Int n ->
      (* (Int): fresh unconstrained variable; its least solution is the
         paper's bottom. *)
      let t = Qtype.make store ~name:"int" Int in
      st.hooks.on_int store n t.Qtype.q;
      t
  | Unit -> Qtype.make store ~name:"unit" Unit
  | Lam (x, body) ->
      let param = Qtype.fresh store ~name:("arg_" ^ x) () in
      let r = infer_expr st ((x, Mono param) :: env) body in
      let t = Qtype.make store ~name:"fun" (Fun (param, r)) in
      st.hooks.on_construct store t;
      t
  | App (e1, e2) ->
      let t1 = infer_expr st env e1 in
      let t2 = infer_expr st env e2 in
      let p = Qtype.fresh store ~name:"app_arg" () in
      let r = Qtype.fresh store ~name:"app_res" () in
      let f = Qtype.make store ~name:"app_fun" (Fun (p, r)) in
      st.hooks.on_app store t1.Qtype.q;
      st.subf ~reason:"function position of application" store t1 f;
      st.subf ~reason:"argument of application" store t2 p;
      r
  | If (e1, e2, e3) ->
      let t1 = infer_expr st env e1 in
      st.subf ~reason:"if guard must be int" store t1
        (Qtype.make store ~name:"guard" Int);
      st.hooks.on_if_guard store t1.Qtype.q;
      let r = Qtype.fresh store ~name:"if_res" () in
      let t2 = infer_expr st env e2 in
      let t3 = infer_expr st env e3 in
      st.subf ~reason:"then branch" store t2 r;
      st.subf ~reason:"else branch" store t3 r;
      r
  | Let (x, e1, e2) ->
      if st.poly && Ast.is_value e1 then begin
        (* (Letv): capture the constraints generated for the bound value,
           generalize the qualifier variables that are local to it. *)
        let t1, atoms =
          Solver.recording store (fun () -> infer_expr st env e1)
        in
        (* Compute the environment's variables *after* inferring the value:
           unification may have refined environment shapes with fresh
           qualifier variables, which must stay monomorphic. *)
        let env_vars = env_qvars env in
        let atom_vars =
          List.concat_map
            (function
              | Solver.Avc (v, _, _, _) | Solver.Acv (_, v, _, _) -> [ v ]
              | Solver.Avv (a, b, _, _) -> [ a; b ])
            atoms
        in
        let candidates = Qtype.qvars t1 @ atom_vars in
        let seen = Hashtbl.create 16 in
        let locals =
          List.filter
            (fun v ->
              let id = Solver.var_id v in
              if Hashtbl.mem env_vars id || Hashtbl.mem seen id then false
              else begin
                Hashtbl.add seen id ();
                true
              end)
            candidates
        in
        let sch = Solver.make_scheme ~locals ~atoms in
        let sch =
          if st.compact then
            Solver.compact st.store ~interface:(Qtype.qvars t1) sch
          else sch
        in
        infer_expr st ((x, Poly { sch; body = t1 }) :: env) e2
      end
      else
        let t1 = infer_expr st env e1 in
        infer_expr st ((x, Mono t1) :: env) e2
  | Ref e ->
      let t = infer_expr st env e in
      let r = Qtype.make store ~name:"ref" (Ref t) in
      st.hooks.on_construct store r;
      r
  | Deref e ->
      let t = infer_expr st env e in
      let c = Qtype.fresh store ~name:"contents" () in
      let cell = Qtype.make store ~name:"deref" (Ref c) in
      st.subf ~reason:"dereference of a non-ref" store t cell;
      st.hooks.on_deref store t.Qtype.q;
      c
  | Assign (e1, e2) ->
      let t1 = infer_expr st env e1 in
      let c = Qtype.fresh store ~name:"assign_cell" () in
      let cell = Qtype.make store ~name:"assign_ref" (Ref c) in
      st.subf ~reason:"assignment to a non-ref" store t1 cell;
      st.hooks.on_assign store t1.Qtype.q;
      let t2 = infer_expr st env e2 in
      st.subf ~reason:"assigned value" store t2 c;
      Qtype.make store ~name:"assign_res" Unit
  | Annot (spec, e) ->
      (* (Annot): premise Q <= l; the result type is exactly l tau. *)
      let t = infer_expr st env e in
      let l = annot_elt sp spec in
      Solver.add_leq_vc ~reason:"annotation premise Q <= l" store t.Qtype.q l;
      let q = Solver.fresh ~name:"annot" store in
      Solver.add_eq_vc ~reason:"annotation result" store q l;
      { t with q }
  | Assert (e, spec) ->
      (* (Assert): Q <= l; the type is unchanged. *)
      let t = infer_expr st env e in
      let l = assert_elt sp spec in
      Solver.add_leq_vc ~reason:"qualifier assertion" store t.Qtype.q l;
      t
  | Binop (op, e1, e2) ->
      let t1 = infer_expr st env e1 in
      let t2 = infer_expr st env e2 in
      st.subf ~reason:"left operand must be int" store t1
        (Qtype.make store ~name:"lop" Int);
      st.subf ~reason:"right operand must be int" store t2
        (Qtype.make store ~name:"rop" Int);
      if op = Ast.Div then st.hooks.on_div store t2.Qtype.q;
      let res = Qtype.make store ~name:"binop_res" Int in
      st.hooks.on_binop store op t1.Qtype.q t2.Qtype.q res.Qtype.q;
      res

(** Result of running inference to completion. *)
type result = {
  store : Solver.t;
  qtyp : Qtype.t;
  errors : Solver.error list;  (** empty iff the program typechecks *)
}

let infer ?(hooks = no_hooks) ?(poly = false) ?(unsound_ref = false)
    ?(compact = true) ?(env = []) space e =
  let store = Solver.create space in
  let subf ?reason store' t1 t2 =
    if unsound_ref then Qtype.sub_unsound_ref ?reason store' t1 t2
    else Qtype.sub ?reason store' t1 t2
  in
  let st = { store; hooks; poly; compact; subf } in
  match infer_expr st env e with
  | qtyp ->
      let errors = match Solver.solve store with Ok () -> [] | Error es -> es in
      Ok { store; qtyp; errors }
  | exception Infer_error msg -> Error msg
  | exception Qtype.Type_error msg -> Error msg
  | exception Stype.Type_error msg -> Error msg

(** [check] — the program typechecks iff inference succeeds and its
    constraints are satisfiable. *)
let check ?hooks ?poly ?unsound_ref ?compact ?env space e =
  match infer ?hooks ?poly ?unsound_ref ?compact ?env space e with
  | Error msg -> Error [ msg ]
  | Ok r ->
      if r.errors = [] then Ok r
      else Error (List.map Solver.error_message r.errors)

let typechecks ?hooks ?poly ?unsound_ref ?compact ?env space e =
  match check ?hooks ?poly ?unsound_ref ?compact ?env space e with
  | Ok _ -> true
  | Error _ -> false

(** Solver statistics accumulated while inferring (see {!Solver.stats}). *)
let stats (r : result) = Solver.stats r.store
