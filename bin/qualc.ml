(* qualc: qualifier inference/checking for the example language of the
   paper (Figure 1 + references + annotations/assertions).

   Usage:
     qualc -e 'let x = @[const] ref 1 in x := 2'
     qualc program.lam
     qualc --poly --run -e '...'

   The qualifier space defaults to const+nonzero with their rules; use
   --space to pick another predefined space. *)

open Qlambda

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type spacekind = SConst | SNonzero | SBindingTime | SCn | SFig2 | STaint

let space_of = function
  | SConst -> (Rules.const_space, Rules.const_hooks)
  | SNonzero -> (Rules.nonzero_space, Rules.nonzero_hooks)
  | SBindingTime -> (Rules.binding_time_space, Rules.binding_time_hooks)
  | SCn -> (Rules.cn_space, Rules.cn_hooks)
  | SFig2 -> (Rules.fig2_space, Rules.fig2_hooks)
  | STaint -> (Rules.taint_space, Rules.taint_hooks)

(* --lattice FILE: a user-defined qualifier space. Only the framework
   rules apply (annotations/assertions resolving qualifier and level names
   against the space); predefined spaces keep their per-qualifier hooks. *)
let space_of_lattice_file path =
  let src = read_file path in
  match Typequal.Qualifier.Config.parse src with
  | Error m ->
      Fmt.epr "%s: %s@." path m;
      exit 2
  | Ok quals -> (
      try Typequal.Lattice.Space.create quals
      with Typequal.Lattice.Space_error e ->
        Fmt.epr "%s: %a@." path Typequal.Lattice.pp_space_error e;
        exit 2)

let spacekind_name = function
  | SConst -> "const"
  | SNonzero -> "nonzero"
  | SBindingTime -> "binding-time"
  | SCn -> "cn"
  | SFig2 -> "fig2"
  | STaint -> "taint"

let main expr file poly run_it spacekind stats no_compact lattice dump_lattice
    cache_dir gc =
  (match Typequal.Gctune.setup ?flag:gc () with
  | Ok _ -> ()
  | Error m ->
      Fmt.epr "error: %s@." m;
      exit 2);
  let space, hooks =
    match lattice with
    | Some path -> (space_of_lattice_file path, Infer.no_hooks)
    | None -> space_of spacekind
  in
  if dump_lattice then begin
    Fmt.pr "%a" Typequal.Lattice.Space.pp_dump space;
    exit 0
  end;
  let src =
    match (expr, file) with
    | Some e, _ -> e
    | None, Some f -> read_file f
    | None, None ->
        Fmt.epr "need -e EXPR or FILE@.";
        exit 2
  in
  (* Output-level cache: the verdict is a pure function of the source, the
     qualifier space and the inference options, so the rendered report and
     exit code are cached whole under one self-checking envelope. Bypassed
     for --run and --stats, whose output (evaluation effects, timings) is
     not a pure function of the input. *)
  let cache, key =
    match cache_dir with
    | Some dir when (not run_it) && not stats ->
        let ctx =
          Digest.string
            (Fmt.str "qualc-out-1|%a|%s" Typequal.Lattice.Space.pp_dump space
               Sys.ocaml_version)
        in
        (* hooks are chosen by the space's provenance, not its contents: a
           --lattice file dumping identically to a predefined space still
           runs without its per-qualifier hooks *)
        let hooks_id =
          match lattice with
          | Some _ -> "lattice"
          | None -> spacekind_name spacekind
        in
        let key =
          Digest.string
            (String.concat "\000"
               [ hooks_id; string_of_bool poly; string_of_bool no_compact; src ])
        in
        ( Typequal.Cache.open_dir
            ~warn:(fun m -> Fmt.epr "warning: %s@." m)
            ~ctx dir,
          key )
    | _ -> (None, Digest.string "")
  in
  (match cache with
  | Some c -> (
      match Typequal.Cache.load c ~kind:"out" ~key ~deps:[] with
      | Some payload -> (
          match (Marshal.from_string payload 0 : int * string) with
          | code, out ->
              print_string out;
              exit code
          | exception _ -> Typequal.Cache.reject_undecodable c ~kind:"out" ~key)
      | None -> ())
  | None -> ());
  let store_out code out =
    match cache with
    | Some c ->
        Typequal.Cache.store c ~kind:"out" ~key ~deps:[]
          (Marshal.to_string (code, out) [])
    | None -> ()
  in
  match Parse.parse_result src with
  | Error m ->
      Fmt.epr "parse error: %s@." m;
      exit 2
  | Ok ast -> (
      match Infer.check ~hooks ~poly ~compact:(not no_compact) space ast with
      | Error msgs ->
          let out =
            Fmt.str "ill-typed:@."
            ^ String.concat "" (List.map (fun m -> Fmt.str "  %s@." m) msgs)
          in
          print_string out;
          store_out 1 out;
          exit 1
      | Ok r ->
          let out =
            Fmt.str "type: %a@." (Qtype.pp_solved r.Infer.store) r.Infer.qtyp
          in
          print_string out;
          store_out 0 out;
          if stats then
            Fmt.pr "solver: %a@." Typequal.Solver.pp_stats (Infer.stats r);
          if run_it then begin
            let out = Eval.run space ast in
            Fmt.pr "value: %a@." (Eval.pp_outcome space) out
          end;
          exit 0)

open Cmdliner

let expr =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Program text")

let file =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Program file")

let poly =
  Arg.(value & flag & info [ "poly" ] ~doc:"Qualifier polymorphism at lets (Section 3.2)")

let run_it = Arg.(value & flag & info [ "run" ] ~doc:"Evaluate after checking (Figure 5 semantics)")

let spacekind =
  let space_conv =
    Arg.enum
      [
        ("const", SConst);
        ("nonzero", SNonzero);
        ("binding-time", SBindingTime);
        ("cn", SCn);
        ("fig2", SFig2);
        ("taint", STaint);
      ]
  in
  Arg.(
    value & opt space_conv SCn
    & info [ "space" ] ~docv:"SPACE"
        ~doc:"Qualifier space: const, nonzero, binding-time, cn (const+nonzero), fig2, taint")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print constraint-solver statistics after checking")

let no_compact =
  Arg.(
    value & flag
    & info [ "no-compact" ]
        ~doc:"Disable scheme compaction at let-generalization (ablation)")

let lattice =
  Arg.(
    value
    & opt (some string) None
    & info [ "lattice" ] ~docv:"FILE"
        ~doc:
          "Load a user-defined qualifier lattice from a CQual-style config \
           file (see the README for the format) instead of a predefined \
           $(b,--space). Annotations and assertions may then name levels, \
           e.g. @[[tainted]] and |[[maybe_tainted]].")

let dump_lattice =
  Arg.(
    value & flag
    & info [ "dump-lattice" ]
        ~doc:
          "Print the active qualifier space (qualifiers, levels, order, bit \
           layout) and exit")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Cache the rendered verdict and exit code under $(docv), keyed by \
           the source, the qualifier space and the inference options. A \
           verified hit replays the report without re-running inference; any \
           corrupt, truncated or mismatched entry is evicted and the check \
           runs cold. Ignored with $(b,--run) or $(b,--stats), whose output \
           is not a pure function of the input.")

let gc =
  Arg.(
    value
    & opt (some string) None
    & info [ "gc" ] ~docv:"SPEC"
        ~doc:
          "Tune the OCaml runtime: $(b,batch), $(b,off), or a \
           comma-separated $(b,k=v) list. Defaults to \\$TYPEQUAL_GC, \
           else off.")

let cmd =
  let doc = "qualified type inference for the example language (PLDI 1999)" in
  Cmd.v (Cmd.info "qualc" ~doc)
    Term.(
      const main $ expr $ file $ poly $ run_it $ spacekind $ stats
      $ no_compact $ lattice $ dump_lattice $ cache_dir $ gc)

let () = exit (Cmd.eval cmd)
