(* qualc: qualifier inference/checking for the example language of the
   paper (Figure 1 + references + annotations/assertions).

   Usage:
     qualc -e 'let x = @[const] ref 1 in x := 2'
     qualc program.lam
     qualc --poly --run -e '...'

   The qualifier space defaults to const+nonzero with their rules; use
   --space to pick another predefined space. *)

open Qlambda

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type spacekind = SConst | SNonzero | SBindingTime | SCn | SFig2 | STaint

let space_of = function
  | SConst -> (Rules.const_space, Rules.const_hooks)
  | SNonzero -> (Rules.nonzero_space, Rules.nonzero_hooks)
  | SBindingTime -> (Rules.binding_time_space, Rules.binding_time_hooks)
  | SCn -> (Rules.cn_space, Rules.cn_hooks)
  | SFig2 -> (Rules.fig2_space, Rules.fig2_hooks)
  | STaint -> (Rules.taint_space, Rules.taint_hooks)

(* --lattice FILE: a user-defined qualifier space. Only the framework
   rules apply (annotations/assertions resolving qualifier and level names
   against the space); predefined spaces keep their per-qualifier hooks. *)
let space_of_lattice_file path =
  let src = read_file path in
  match Typequal.Qualifier.Config.parse src with
  | Error m ->
      Fmt.epr "%s: %s@." path m;
      exit 2
  | Ok quals -> (
      try Typequal.Lattice.Space.create quals
      with Typequal.Lattice.Space_error e ->
        Fmt.epr "%s: %a@." path Typequal.Lattice.pp_space_error e;
        exit 2)

let main expr file poly run_it spacekind stats no_compact lattice dump_lattice =
  let space, hooks =
    match lattice with
    | Some path -> (space_of_lattice_file path, Infer.no_hooks)
    | None -> space_of spacekind
  in
  if dump_lattice then begin
    Fmt.pr "%a" Typequal.Lattice.Space.pp_dump space;
    exit 0
  end;
  let src =
    match (expr, file) with
    | Some e, _ -> e
    | None, Some f -> read_file f
    | None, None ->
        Fmt.epr "need -e EXPR or FILE@.";
        exit 2
  in
  match Parse.parse_result src with
  | Error m ->
      Fmt.epr "parse error: %s@." m;
      exit 2
  | Ok ast -> (
      match Infer.check ~hooks ~poly ~compact:(not no_compact) space ast with
      | Error msgs ->
          Fmt.pr "ill-typed:@.";
          List.iter (fun m -> Fmt.pr "  %s@." m) msgs;
          exit 1
      | Ok r ->
          Fmt.pr "type: %a@." (Qtype.pp_solved r.Infer.store) r.Infer.qtyp;
          if stats then
            Fmt.pr "solver: %a@." Typequal.Solver.pp_stats (Infer.stats r);
          if run_it then begin
            let out = Eval.run space ast in
            Fmt.pr "value: %a@." (Eval.pp_outcome space) out
          end;
          exit 0)

open Cmdliner

let expr =
  Arg.(
    value
    & opt (some string) None
    & info [ "e"; "expr" ] ~docv:"EXPR" ~doc:"Program text")

let file =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Program file")

let poly =
  Arg.(value & flag & info [ "poly" ] ~doc:"Qualifier polymorphism at lets (Section 3.2)")

let run_it = Arg.(value & flag & info [ "run" ] ~doc:"Evaluate after checking (Figure 5 semantics)")

let spacekind =
  let space_conv =
    Arg.enum
      [
        ("const", SConst);
        ("nonzero", SNonzero);
        ("binding-time", SBindingTime);
        ("cn", SCn);
        ("fig2", SFig2);
        ("taint", STaint);
      ]
  in
  Arg.(
    value & opt space_conv SCn
    & info [ "space" ] ~docv:"SPACE"
        ~doc:"Qualifier space: const, nonzero, binding-time, cn (const+nonzero), fig2, taint")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print constraint-solver statistics after checking")

let no_compact =
  Arg.(
    value & flag
    & info [ "no-compact" ]
        ~doc:"Disable scheme compaction at let-generalization (ablation)")

let lattice =
  Arg.(
    value
    & opt (some string) None
    & info [ "lattice" ] ~docv:"FILE"
        ~doc:
          "Load a user-defined qualifier lattice from a CQual-style config \
           file (see the README for the format) instead of a predefined \
           $(b,--space). Annotations and assertions may then name levels, \
           e.g. @[[tainted]] and |[[maybe_tainted]].")

let dump_lattice =
  Arg.(
    value & flag
    & info [ "dump-lattice" ]
        ~doc:
          "Print the active qualifier space (qualifiers, levels, order, bit \
           layout) and exit")

let cmd =
  let doc = "qualified type inference for the example language (PLDI 1999)" in
  Cmd.v (Cmd.info "qualc" ~doc)
    Term.(
      const main $ expr $ file $ poly $ run_it $ spacekind $ stats
      $ no_compact $ lattice $ dump_lattice)

let () = exit (Cmd.eval cmd)
