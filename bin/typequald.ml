(* typequald: the persistent analysis daemon. Loads a project into a
   Session and serves position-level queries over newline-delimited
   JSON-RPC — on stdin/stdout by default, or on a Unix socket with
   --socket (any number of concurrent clients). Clean units are never
   re-parsed and clean SCCs never re-solved across edits: an "update"
   dirties exactly the edit's dependency cone.

   Methods (params in braces; "mode" is always optional, defaulting to
   --mode): units, update {name, source}, remove {name}, run {mode},
   positions {mode}, classify {key, mode}, explain {key, mode},
   whatif {key, qual, mode}, diagnostics, render {mode, name, positions,
   stats}, stats, shutdown. Position keys are unit:line:col@level or
   unit:fun:pN@level / unit:fun:ret@level (see DESIGN.md).

   whatif requests arriving together in one read are prepared serially
   and evaluated as a batch on the domain pool (--jobs), each on its own
   private clone of the warm store.

   --client PATH turns the binary into a line pump for CI: stdin lines
   go to the socket, response lines to stdout. *)

open Cqual
module U = Unix

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let verdict_str v = Fmt.str "%a" Report.pp_verdict v

let json_of_position key (p : Report.position) v : Wire.json =
  Wire.Obj
    [
      ("key", Wire.Str key);
      ("fun", Wire.Str p.Report.p_fun);
      ("where", Wire.Str (Fmt.str "%a" Report.pp_where p.Report.p_where));
      ("level", Wire.num_int p.Report.p_level);
      ("declared", Wire.Bool p.Report.p_declared);
      ("unit", Wire.Str p.Report.p_unit);
      ("line", Wire.num_int p.Report.p_line);
      ("col", Wire.num_int p.Report.p_col);
      ("verdict", Wire.Str (verdict_str v));
      ( "levels",
        match p.Report.p_levels with
        | None -> Wire.Null
        | Some (lo, hi) -> Wire.Arr [ Wire.Str lo; Wire.Str hi ] );
    ]

let json_of_diag (d : Cfront.Diag.t) : Wire.json =
  Wire.Obj
    [
      ("severity", Wire.Str (Fmt.str "%a" Cfront.Diag.pp_severity
                               d.Cfront.Diag.d_severity));
      ("code", Wire.Str d.Cfront.Diag.d_code);
      ( "unit",
        match d.Cfront.Diag.d_unit with
        | Some u -> Wire.Str u
        | None -> Wire.Null );
      ("line", Wire.num_int d.Cfront.Diag.d_span.Cfront.Diag.sl);
      ("message", Wire.Str d.Cfront.Diag.d_message);
      ("rendered", Wire.Str (Fmt.str "%a" Cfront.Diag.pp d));
    ]

let mode_of_params params : (Analysis.mode option, string) result =
  match Wire.mem_string "mode" params with
  | None -> Ok None
  | Some "mono" -> Ok (Some Analysis.Mono)
  | Some "poly" -> Ok (Some Analysis.Poly)
  | Some "polyrec" -> Ok (Some Analysis.Polyrec)
  | Some m -> Error (Printf.sprintf "unknown mode %S" m)

let json_of_run mode (r : Session.run) : Wire.json =
  Wire.Obj
    [
      ("mode", Wire.Str (Session.mode_name mode));
      ("lines", Wire.num_int r.Session.lines);
      ("functions", Wire.num_int r.Session.n_functions);
      ("variables", Wire.num_int r.Session.n_constraints);
      ("total", Wire.num_int r.Session.results.Report.total);
      ("declared", Wire.num_int r.Session.results.Report.declared);
      ("possible", Wire.num_int r.Session.results.Report.possible);
      ("must", Wire.num_int r.Session.results.Report.must);
      ("type_errors", Wire.num_int r.Session.results.Report.type_errors);
      ("compile_s", Wire.Num r.Session.timing.Session.t_compile);
      ("analyze_s", Wire.Num r.Session.timing.Session.t_analysis);
    ]

let json_of_whatif (w : Session.whatif_result) : Wire.json =
  Wire.Obj
    [
      ("key", Wire.Str w.Session.w_key);
      ("qual", Wire.Str w.Session.w_qual);
      ( "changed",
        Wire.Arr
          (List.map
             (fun (c : Session.whatif_change) ->
               Wire.Obj
                 [
                   ("key", Wire.Str c.Session.wc_key);
                   ("fun", Wire.Str c.Session.wc_fun);
                   ("before", Wire.Str (verdict_str c.Session.wc_before));
                   ("after", Wire.Str (verdict_str c.Session.wc_after));
                 ])
             w.Session.w_changed) );
      ("errors_before", Wire.num_int w.Session.w_errors_before);
      ("errors_after", Wire.num_int w.Session.w_errors_after);
    ]

(* What one parsed request becomes before evaluation: an immediate
   answer, a pooled what-if thunk, or a shutdown. *)
type prepared =
  | Ready of Wire.json
  | Failed of string
  | Pooled of (unit -> Session.whatif_result)
  | Quit

let prepare (session : Session.t) ~jobs (rq : Wire.request) : prepared =
  let params = rq.Wire.rq_params in
  let with_mode k =
    match mode_of_params params with
    | Error m -> Failed m
    | Ok mode -> k mode
  in
  match rq.Wire.rq_method with
  | "units" ->
      Ready
        (Wire.Obj
           [
             ( "units",
               Wire.Arr
                 (List.map (fun u -> Wire.Str u) (Session.units session)) );
           ])
  | "update" -> (
      match
        (Wire.mem_string "name" params, Wire.mem_string "source" params)
      with
      | Some name, Some src ->
          let status =
            match Session.update_unit session name src with
            | `Added -> "added"
            | `Updated -> "updated"
            | `Unchanged -> "unchanged"
          in
          Ready (Wire.Obj [ ("status", Wire.Str status) ])
      | _ -> Failed "update wants {name, source}")
  | "remove" -> (
      match Wire.mem_string "name" params with
      | Some name ->
          Ready
            (Wire.Obj
               [ ("removed", Wire.Bool (Session.remove_unit session name)) ])
      | None -> Failed "remove wants {name}")
  | "run" ->
      with_mode (fun mode ->
          let r = Session.run ?mode session in
          let m = Option.value mode ~default:(Session.default_mode session) in
          Ready (json_of_run m r))
  | "positions" ->
      with_mode (fun mode ->
          Ready
            (Wire.Obj
               [
                 ( "positions",
                   Wire.Arr
                     (List.map
                        (fun (k, p, v) -> json_of_position k p v)
                        (Session.positions ?mode session)) );
               ]))
  | "classify" ->
      with_mode (fun mode ->
          match Wire.mem_string "key" params with
          | None -> Failed "classify wants {key}"
          | Some key -> (
              match Session.classify ?mode session key with
              | Some (p, v) -> Ready (json_of_position key p v)
              | None -> Failed (Printf.sprintf "unknown position key %S" key)))
  | "explain" ->
      with_mode (fun mode ->
          match Wire.mem_string "key" params with
          | None -> Failed "explain wants {key}"
          | Some key -> (
              match Session.explain ?mode session key with
              | Error m -> Failed m
              | Ok (p, v, expl) ->
                  Ready
                    (Wire.Obj
                       [
                         ("position", json_of_position key p v);
                         ( "explanation",
                           match expl with
                           | Some e -> Wire.Str e
                           | None -> Wire.Null );
                       ])))
  | "whatif" ->
      with_mode (fun mode ->
          match
            (Wire.mem_string "key" params, Wire.mem_string "qual" params)
          with
          | Some key, Some qual -> (
              match Session.whatif_task ?mode session ~qual key with
              | Error m -> Failed m
              | Ok thunk -> Pooled thunk)
          | _ -> Failed "whatif wants {key, qual}")
  | "diagnostics" ->
      let ds = Session.diagnostics session in
      let ds =
        match Session.oversubscription_notice ~jobs with
        | Some d -> ds @ [ d ]
        | None -> ds
      in
      Ready
        (Wire.Obj [ ("diagnostics", Wire.Arr (List.map json_of_diag ds)) ])
  | "render" ->
      with_mode (fun mode ->
          let name =
            Option.value (Wire.mem_string "name" params) ~default:"session"
          in
          let positions = Wire.mem_bool "positions" params in
          let stats = Wire.mem_bool "stats" params in
          Ready
            (Wire.Obj
               [
                 ( "text",
                   Wire.Str
                     (Session.render ?mode ?stats ?positions ~name session)
                 );
               ]))
  | "stats" ->
      let st = Session.stats session in
      Ready
        (Wire.Obj
           [
             ("units", Wire.num_int st.Session.ss_units);
             ( "modes",
               Wire.Arr
                 (List.map (fun m -> Wire.Str m) st.Session.ss_modes) );
             ("memo_hits", Wire.num_int st.Session.ss_memo_hits);
             ("memo_misses", Wire.num_int st.Session.ss_memo_misses);
             ( "cache",
               match st.Session.ss_cache with
               | Some cs ->
                   Wire.Str (Fmt.str "%a" Typequal.Cache.pp_stats cs)
               | None -> Wire.Null );
           ])
  | "shutdown" -> Quit
  | m -> Failed (Printf.sprintf "unknown method %S" m)

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

(* one connected client: its fd, unframed input, and pending output *)
type client = {
  fd : U.file_descr;
  inbuf : Buffer.t;
  mutable dead : bool;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      let k = U.write fd b off (n - off) in
      go (off + k)
  in
  go 0

(* split complete lines off a client's input buffer *)
let take_lines (c : client) : string list =
  let s = Buffer.contents c.inbuf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
      Buffer.clear c.inbuf;
      Buffer.add_string c.inbuf
        (String.sub s (last + 1) (String.length s - last - 1));
      String.split_on_char '\n' (String.sub s 0 last)

(* Evaluate one select-round's worth of requests. The serial prepare
   step runs on the event loop (it owns the session); what-if thunks —
   the only store-heavy query — are fanned out on the domain pool and
   joined before responses are written, in arrival order per client. *)
let process session ~jobs (batch : (client * Wire.request) list) : bool =
  let prepared =
    List.map
      (fun (c, rq) ->
        let p =
          try prepare session ~jobs rq with
          | Session.Error m -> Failed m
          | Cfront.Cprog.Frontend_error m -> Failed ("frontend: " ^ m)
        in
        (c, rq, p))
      batch
  in
  let thunks =
    List.filter_map
      (function _, _, Pooled f -> Some f | _ -> None)
      prepared
  in
  let results : (unit -> Session.whatif_result, Session.whatif_result) Hashtbl.t
      =
    Hashtbl.create 8
  in
  (match thunks with
  | [] -> ()
  | [ f ] -> Hashtbl.replace results f (f ())
  | fs ->
      Typequal.Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun f ->
              Typequal.Pool.submit pool (fun () ->
                  let r = f () in
                  Hashtbl.replace results f r))
            fs;
          Typequal.Pool.wait pool));
  let quit = ref false in
  List.iter
    (fun (c, rq, p) ->
      let id = rq.Wire.rq_id in
      let line =
        match p with
        | Ready j -> Wire.response_ok ~id j
        | Failed m -> Wire.response_error ~id m
        | Pooled f ->
            Wire.response_ok ~id (json_of_whatif (Hashtbl.find results f))
        | Quit ->
            quit := true;
            Wire.response_ok ~id (Wire.Obj [ ("ok", Wire.Bool true) ])
      in
      if not c.dead then
        try write_all c.fd (line ^ "\n")
        with U.Unix_error ((U.EPIPE | U.ECONNRESET | U.EBADF), _, _) ->
          c.dead <- true)
    prepared;
  !quit

let serve session ~jobs ~(listen : U.file_descr option)
    ~(stdio : (U.file_descr * U.file_descr) option) =
  (ignore : Sys.signal_behavior -> unit)
    (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let clients : client list ref = ref [] in
  (match stdio with
  | Some (fd_in, _) ->
      clients := [ { fd = fd_in; inbuf = Buffer.create 256; dead = false } ]
  | None -> ());
  let out_fd_of (c : client) =
    match stdio with
    | Some (fd_in, fd_out) when c.fd = fd_in -> fd_out
    | _ -> c.fd
  in
  let running = ref true in
  while !running do
    let fds =
      (match listen with Some l -> [ l ] | None -> [])
      @ List.map (fun c -> c.fd) (List.filter (fun c -> not c.dead) !clients)
    in
    if fds = [] then running := false
    else begin
      let readable, _, _ =
        try U.select fds [] [] (-1.0)
        with U.Unix_error (U.EINTR, _, _) -> ([], [], [])
      in
      (* accept new connections *)
      (match listen with
      | Some l when List.mem l readable ->
          let fd, _ = U.accept l in
          clients :=
            !clients @ [ { fd; inbuf = Buffer.create 256; dead = false } ]
      | _ -> ());
      (* drain readable clients, frame lines, parse requests *)
      let batch = ref [] in
      List.iter
        (fun c ->
          if (not c.dead) && List.mem c.fd readable then begin
            let buf = Bytes.create 65536 in
            let n =
              try U.read c.fd buf 0 (Bytes.length buf)
              with U.Unix_error ((U.ECONNRESET | U.EBADF), _, _) -> 0
            in
            if n = 0 then begin
              c.dead <- true;
              (* EOF on stdin ends a stdio daemon *)
              if stdio <> None then running := false
            end
            else begin
              Buffer.add_subbytes c.inbuf buf 0 n;
              List.iter
                (fun line ->
                  let line = String.trim line in
                  if line <> "" then
                    match Wire.parse_request line with
                    | Ok rq -> batch := (c, rq) :: !batch
                    | Error m ->
                        let resp =
                          Wire.response_error ~id:Wire.Null
                            ("bad request: " ^ m)
                        in
                        (try write_all (out_fd_of c) (resp ^ "\n")
                         with U.Unix_error (_, _, _) -> c.dead <- true))
                (take_lines c)
            end
          end)
        !clients;
      let batch =
        List.rev_map (fun (c, rq) -> ({ c with fd = out_fd_of c }, rq)) !batch
      in
      if batch <> [] && process session ~jobs batch then running := false;
      (* reap dead clients *)
      List.iter
        (fun c ->
          if c.dead && stdio = None then try U.close c.fd with _ -> ())
        !clients;
      clients := List.filter (fun c -> not c.dead) !clients
    end
  done

(* ------------------------------------------------------------------ *)
(* Client mode (a line pump, for CI and scripting)                     *)
(* ------------------------------------------------------------------ *)

let run_client path =
  let fd = U.socket U.PF_UNIX U.SOCK_STREAM 0 in
  (try U.connect fd (U.ADDR_UNIX path)
   with U.Unix_error (e, _, _) ->
     Fmt.epr "error: cannot connect to %s: %s@." path (U.error_message e);
     exit 2);
  let ic = U.in_channel_of_descr fd in
  (try
     let rec pump () =
       match In_channel.input_line In_channel.stdin with
       | None -> ()
       | Some line ->
           if String.trim line <> "" then begin
             write_all fd (line ^ "\n");
             match In_channel.input_line ic with
             | Some resp ->
                 print_endline resp;
                 pump ()
             | None -> ()
           end
           else pump ()
     in
     pump ()
   with End_of_file -> ());
  (try U.close fd with _ -> ());
  0

(* ------------------------------------------------------------------ *)
(* Startup                                                             *)
(* ------------------------------------------------------------------ *)

let rules_of ~taint ~lattice ~qual =
  match lattice with
  | Some path -> (
      let src = read_file path in
      match Typequal.Qualifier.Config.parse src with
      | Error m ->
          Fmt.epr "%s: %s@." path m;
          exit 2
      | Ok quals -> (
          let sp =
            try Typequal.Lattice.Space.create quals
            with Typequal.Lattice.Space_error e ->
              Fmt.epr "%s: %a@." path Typequal.Lattice.pp_space_error e;
              exit 2
          in
          let qual =
            match qual with
            | Some q -> q
            | None -> Typequal.Qualifier.name (List.hd quals)
          in
          try Analysis.lattice_rules sp ~qual
          with Invalid_argument m ->
            Fmt.epr "%s@." m;
            exit 2))
  | None -> if taint then Analysis.taint_rules else Analysis.const_rules

let load_units files bench =
  match (files, bench) with
  | _ :: _, _ -> List.map (fun f -> (f, read_file f)) files
  | [], Some b -> (
      match List.assoc_opt b Cbench.Programs.all with
      | Some src -> [ (b, src) ]
      | None when b = "miniproject" -> Cbench.Programs.miniproject
      | None -> (
          let find l =
            List.find_opt (fun (x : Cbench.Suite.bench) -> x.b_name = b) l
          in
          match find Cbench.Suite.table1 with
          | Some bb -> [ (b, Cbench.Suite.source_of bb) ]
          | None -> (
              match find (Cbench.Suite.scale @ Cbench.Suite.scale_smoke) with
              | Some bb -> Cbench.Suite.project_of bb
              | None ->
                  Fmt.epr "unknown benchmark %s@." b;
                  exit 2)))
  | [], None -> []

let main files bench mode jobs max_errors no_compact taint lattice qual
    cache_dir socket client =
  match client with
  | Some path -> run_client path
  | None -> (
      let rules = rules_of ~taint ~lattice ~qual in
      (match Session.oversubscription_notice ~jobs with
      | Some d -> Fmt.epr "%a@." Cfront.Diag.pp d
      | None -> ());
      let cache =
        match cache_dir with
        | None -> None
        | Some dir ->
            let opts_id =
              String.concat ":"
                [
                  (match lattice with
                  | Some path ->
                      "lattice="
                      ^ Digest.to_hex (Digest.string (read_file path))
                  | None -> if taint then "taint" else "const");
                  (match qual with Some q -> q | None -> "-");
                ]
            in
            Session.open_cache
              ~warn:(fun m -> Fmt.epr "warning: %s@." m)
              ~rules ~opts_id dir
      in
      let units = load_units files bench in
      let session =
        Session.create ~rules ~mode ~max_errors ~compact:(not no_compact)
          ~jobs ?cache units
      in
      match socket with
      | None ->
          serve session ~jobs ~listen:None
            ~stdio:(Some (U.stdin, U.stdout));
          0
      | Some path ->
          (try U.unlink path with U.Unix_error _ -> ());
          let l = U.socket U.PF_UNIX U.SOCK_STREAM 0 in
          (try
             U.bind l (U.ADDR_UNIX path);
             U.listen l 64
           with U.Unix_error (e, _, _) ->
             Fmt.epr "error: cannot listen on %s: %s@." path
               (U.error_message e);
             exit 2);
          Fun.protect
            ~finally:(fun () ->
              (try U.close l with _ -> ());
              try U.unlink path with U.Unix_error _ -> ())
            (fun () -> serve session ~jobs ~listen:(Some l) ~stdio:None);
          0)

open Cmdliner

let files =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FILE" ~doc:"C translation units to load into the session")

let bench =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"NAME"
        ~doc:"Load an embedded or synthetic benchmark instead of files")

let mode =
  let mode_conv =
    Arg.enum
      [
        ("mono", Analysis.Mono);
        ("poly", Analysis.Poly);
        ("polyrec", Analysis.Polyrec);
      ]
  in
  Arg.(
    value
    & opt mode_conv Analysis.Poly
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Default inference mode for queries (mono|poly|polyrec)")

let jobs =
  Arg.(
    value
    & opt int (Typequal.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for analysis and what-if batches. Defaults to \
           \\$TYPEQUAL_JOBS or 1.")

let max_errors =
  Arg.(
    value & opt int 20
    & info [ "max-errors" ] ~docv:"N"
        ~doc:"Stop collecting lexer/parser diagnostics after $(docv)")

let no_compact =
  Arg.(
    value & flag
    & info [ "no-compact" ]
        ~doc:"Disable scheme compaction (the ablation baseline)")

let taint =
  Arg.(
    value & flag
    & info [ "taint" ] ~doc:"Serve the taint rules instead of const")

let lattice =
  Arg.(
    value
    & opt (some string) None
    & info [ "lattice" ] ~docv:"FILE"
        ~doc:"Serve a user-defined qualifier lattice (CQual-style config)")

let qual =
  Arg.(
    value
    & opt (some string) None
    & info [ "qual" ] ~docv:"NAME"
        ~doc:"With --lattice: the qualifier whose verdicts are reported")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:"Attach the persistent disk cache tiers under $(docv)")

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Serve on a Unix socket at $(docv) (any number of concurrent \
           clients) instead of stdin/stdout")

let client =
  Arg.(
    value
    & opt (some string) None
    & info [ "client" ] ~docv:"PATH"
        ~doc:
          "Connect to a daemon at Unix socket $(docv) and pump stdin lines \
           to it, printing responses — for scripting and CI")

let cmd =
  let doc = "persistent const-inference daemon (JSON-RPC over stdio or a Unix socket)" in
  Cmd.v
    (Cmd.info "typequald" ~doc)
    Term.(
      const main $ files $ bench $ mode $ jobs $ max_errors $ no_compact
      $ taint $ lattice $ qual $ cache_dir $ socket $ client)

let () =
  exit
    (try
       match Cmd.eval' ~catch:false cmd with (124 | 125) -> 2 | code -> code
     with
    | Session.Error m | Cfront.Cprog.Frontend_error m ->
        Fmt.epr "error: %s@." m;
        2
    | Failure m ->
        Fmt.epr "error: %s@." m;
        2
    | Sys_error m ->
        Fmt.epr "error: %s@." m;
        2)
