(* cqualc: const inference for C programs (the tool of Section 4).

   Usage:
     cqualc file.c             monomorphic and polymorphic inference
     cqualc --mode mono file.c only one mode
     cqualc --positions file.c per-position verdicts
     cqualc --bench NAME       run on an embedded/synthetic benchmark

   Exit status 1 on type errors (incorrect const usage), 0 otherwise. *)

open Cqual

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let pp_mode ppf = function
  | Analysis.Mono -> Fmt.string ppf "monomorphic"
  | Analysis.Poly -> Fmt.string ppf "polymorphic"
  | Analysis.Polyrec -> Fmt.string ppf "polymorphic-recursive"

let run_one ~rules ~positions ~stats mode name src =
  let r = Driver.run_source ~mode ~rules src in
  let res = r.Driver.results in
  Fmt.pr "=== %s (%a) ===@." name pp_mode mode;
  Fmt.pr "lines: %d, functions: %d, qualifier variables: %d@." r.Driver.lines
    r.Driver.n_functions r.Driver.n_constraints;
  if stats then
    Fmt.pr "solver: %a@." Typequal.Solver.pp_stats r.Driver.solver_stats;
  Fmt.pr
    "interesting const positions: %d total; %d declared, %d possible (%d \
     must-const, %d could-be-either), %d must-not@."
    res.Report.total res.Report.declared res.Report.possible res.Report.must
    (res.Report.possible - res.Report.must)
    (res.Report.total - res.Report.possible);
  if res.Report.type_errors > 0 then
    Fmt.pr "TYPE ERRORS: %d (const usage is inconsistent)@."
      res.Report.type_errors;
  List.iter (fun w -> Fmt.pr "warning: %s@." w) res.Report.warnings;
  if positions then
    List.iter (fun pv -> Fmt.pr "  %a@." Report.pp_position pv)
      res.Report.positions;
  res.Report.type_errors

let run_flow name src insensitive =
  match
    Flow.analyze_source
      ~mode:(if insensitive then Flow.Insensitive else Flow.Sensitive)
      src
  with
  | Error m ->
      Fmt.epr "error: %s@." m;
      2
  | Ok r ->
      Fmt.pr "=== %s (flow-%s taint) ===@." name
        (if insensitive then "insensitive" else "sensitive");
      List.iter
        (fun fr ->
          if fr.Flow.fr_fell_back then
            Fmt.pr "note: %s uses goto; analyzed flow-insensitively@."
              fr.Flow.fr_name)
        r.Flow.functions;
      if r.Flow.errors = [] then begin
        Fmt.pr "no taint violations@.";
        0
      end
      else begin
        List.iter (fun e -> Fmt.pr "VIOLATION: %s@." e) r.Flow.errors;
        1
      end

let main file bench mode positions taint flow insensitive stats =
  let name, src =
    match (file, bench) with
    | Some f, _ -> (f, read_file f)
    | None, Some b -> (
        match List.assoc_opt b Cbench.Programs.all with
        | Some src -> (b, src)
        | None -> (
            match
              List.find_opt
                (fun (x : Cbench.Suite.bench) -> x.b_name = b)
                Cbench.Suite.table1
            with
            | Some bb -> (b, Cbench.Suite.source_of bb)
            | None ->
                Fmt.epr
                  "unknown benchmark %s; embedded: %a; synthetic: %a@." b
                  Fmt.(list ~sep:comma string)
                  (List.map fst Cbench.Programs.all)
                  Fmt.(list ~sep:comma string)
                  (List.map
                     (fun (x : Cbench.Suite.bench) -> x.b_name)
                     Cbench.Suite.table1);
                exit 2))
    | None, None ->
        Fmt.epr "need a FILE or --bench NAME@.";
        exit 2
  in
  if flow then run_flow name src insensitive
  else
    let rules = if taint then Analysis.taint_rules else Analysis.const_rules in
    match
      let errs =
        match mode with
        | Some m -> run_one ~rules ~positions ~stats m name src
        | None ->
            let e1 = run_one ~rules ~positions ~stats Analysis.Mono name src in
            let e2 = run_one ~rules ~positions ~stats Analysis.Poly name src in
            e1 + e2
      in
      errs
    with
    | 0 -> 0
    | _ -> 1
    | exception Driver.Error m ->
        Fmt.epr "error: %s@." m;
        2

open Cmdliner

let file =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"C source file")

let bench =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"NAME" ~doc:"Analyze an embedded or synthetic benchmark")

let mode =
  let mode_conv =
    Arg.enum
      [
        ("mono", Analysis.Mono);
        ("poly", Analysis.Poly);
        ("polyrec", Analysis.Polyrec);
      ]
  in
  Arg.(
    value
    & opt (some mode_conv) None
    & info [ "mode" ] ~docv:"MODE" ~doc:"Run only one inference mode (mono|poly|polyrec)")

let positions =
  Arg.(value & flag & info [ "positions" ] ~doc:"Print every interesting position's verdict")

let taint =
  Arg.(
    value & flag
    & info [ "taint" ]
        ~doc:"Run the taint rules instead of const ($tainted/$untainted prototypes)")

let flow =
  Arg.(
    value & flag
    & info [ "flow" ]
        ~doc:"Run the flow-sensitive scalar taint analysis (Section 6 extension)")

let insensitive =
  Arg.(
    value & flag
    & info [ "insensitive" ]
        ~doc:"With --flow: use the flow-insensitive baseline")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print constraint-solver statistics (unifications, edge dedup, \
              cycle collapses, worklist pops)")

let cmd =
  let doc = "const inference for C (Foster, Fähndrich, Aiken — PLDI 1999)" in
  Cmd.v
    (Cmd.info "cqualc" ~doc)
    Term.(
      const main $ file $ bench $ mode $ positions $ taint $ flow $ insensitive
      $ stats)

let () = exit (Cmd.eval' cmd)
