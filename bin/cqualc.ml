(* cqualc: const inference for C programs (the tool of Section 4).

   Usage:
     cqualc file.c             monomorphic and polymorphic inference
     cqualc a.c b.c main.c     a multi-file project, analyzed whole-program
     cqualc --mode mono file.c only one mode
     cqualc --positions file.c per-position verdicts
     cqualc --bench NAME       run on an embedded/synthetic benchmark
                               (including the multi-file scale corpora)

   Exit status: 0 clean (including degraded-but-recovered analyses),
   1 on type errors (incorrect const usage), 2 on usage errors, files
   with lexer/parser diagnostics, or internal faults. Never prints a
   backtrace. *)

open Cqual

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --budget spec: "vars=N,pops=N,ms=N" (any subset) or a bare integer,
   which bounds worklist pops. A fresh Budget.t is built per analysis run
   (trips latch, so a budget cannot be shared between the mono and poly
   passes). *)
type budget_spec = {
  bs_vars : int option;
  bs_pops : int option;
  bs_ms : int option;
}

let parse_budget_spec s =
  match int_of_string_opt (String.trim s) with
  | Some n when n > 0 -> Ok { bs_vars = None; bs_pops = Some n; bs_ms = None }
  | Some _ -> Error "budget must be positive"
  | None ->
      List.fold_left
        (fun acc part ->
          match acc with
          | Error _ -> acc
          | Ok spec -> (
              match String.index_opt part '=' with
              | None ->
                  Error
                    (Printf.sprintf
                       "bad budget item %S (want vars=N, pops=N or ms=N)"
                       part)
              | Some i ->
                  let k = String.trim (String.sub part 0 i) in
                  let v =
                    String.sub part (i + 1) (String.length part - i - 1)
                  in
                  (match (k, int_of_string_opt (String.trim v)) with
                  | "vars", Some n when n > 0 ->
                      Ok { spec with bs_vars = Some n }
                  | "pops", Some n when n > 0 ->
                      Ok { spec with bs_pops = Some n }
                  | "ms", Some n when n > 0 -> Ok { spec with bs_ms = Some n }
                  | ("vars" | "pops" | "ms"), _ ->
                      Error
                        (Printf.sprintf "budget %s wants a positive integer" k)
                  | _ ->
                      Error
                        (Printf.sprintf
                           "unknown budget key %S (want vars, pops or ms)" k))))
        (Ok { bs_vars = None; bs_pops = None; bs_ms = None })
        (String.split_on_char ',' s)

let budget_of_spec = function
  | None -> None
  | Some s ->
      Some
        (Typequal.Budget.create ?max_vars:s.bs_vars ?max_pops:s.bs_pops
           ?deadline_s:(Option.map (fun ms -> float_of_int ms /. 1000.) s.bs_ms)
           ~clock:Unix.gettimeofday ())

(* What the analysis runs on: a single source keeps its text (and
   diagnostic line numbers) untouched; a project of several translation
   units is concatenated by the driver, which also tracks each unit's
   span so the cache can key invalidation per file. *)
type input =
  | Single of string * string  (** unit name, source *)
  | Project of (string * string) list

let source_of_input = function
  | Single (_, src) -> src
  | Project files -> Session.concat_sources files

(* a thin Session client: the batch entry points feed the run to the
   session's renderer, which produces the whole stdout block *)
let run_one ~rules ~positions ~stats ~budget ~jobs ~max_errors ~compact
    ~cache ~frontend ~print_diags mode name input =
  let budget = budget_of_spec budget in
  let r =
    match input with
    | Single (unit, src) ->
        Session.run_source ~mode ~rules ?budget ~compact ~jobs ~max_errors
          ?cache ~unit src
    | Project files ->
        Session.run_sources ~frontend ~mode ~rules ?budget ~compact ~jobs
          ~max_errors ?cache files
  in
  (* diagnostics are a property of the source, not the mode: print them
     once even when both modes run *)
  if print_diags then
    List.iter (fun d -> Fmt.epr "%a@." Cfront.Diag.pp d) r.Session.diagnostics;
  Fmt.pr "%s" (Session.render_run ~stats ~positions ~jobs ~name mode r);
  r

let run_flow name src insensitive =
  match
    Flow.analyze_source
      ~mode:(if insensitive then Flow.Insensitive else Flow.Sensitive)
      src
  with
  | Error m ->
      Fmt.epr "error: %s@." m;
      2
  | Ok r ->
      Fmt.pr "=== %s (flow-%s taint) ===@." name
        (if insensitive then "insensitive" else "sensitive");
      List.iter
        (fun fr ->
          if fr.Flow.fr_fell_back then
            Fmt.pr "note: %s uses goto; analyzed flow-insensitively@."
              fr.Flow.fr_name)
        r.Flow.functions;
      if r.Flow.errors = [] then begin
        Fmt.pr "no taint violations@.";
        0
      end
      else begin
        List.iter (fun e -> Fmt.pr "VIOLATION: %s@." e) r.Flow.errors;
        1
      end

(* --lattice FILE: build the analysis rules from a user-defined lattice
   config (CQual-style; see the README for the format). The measured
   qualifier defaults to the first one declared; --qual overrides. *)
let rules_of_lattice_file path qual_override =
  let src = read_file path in
  match Typequal.Qualifier.Config.parse src with
  | Error m ->
      Fmt.epr "%s: %s@." path m;
      exit 2
  | Ok quals -> (
      let sp =
        try Typequal.Lattice.Space.create quals
        with Typequal.Lattice.Space_error e ->
          Fmt.epr "%s: %a@." path Typequal.Lattice.pp_space_error e;
          exit 2
      in
      let qual =
        match qual_override with
        | Some q -> q
        | None -> Typequal.Qualifier.name (List.hd quals)
      in
      try Analysis.lattice_rules sp ~qual
      with Invalid_argument m ->
        Fmt.epr "%s@." m;
        exit 2)

let main files bench mode positions taint flow insensitive stats budget jobs
    max_errors no_compact concat_frontend lattice qual dump_lattice cache_dir
    gc =
  (match Typequal.Gctune.setup ?flag:gc () with
  | Ok _ -> ()
  | Error m ->
      Fmt.epr "error: %s@." m;
      exit 2);
  (* the advisory is a structured Notice diagnostic (code N0901); the CLI
     renders just its message under the historical "warning: " prefix *)
  (match Session.oversubscription_notice ~jobs with
  | Some d -> Fmt.epr "warning: %s@." d.Cfront.Diag.d_message
  | None -> ());
  let rules =
    match lattice with
    | Some path -> rules_of_lattice_file path qual
    | None -> if taint then Analysis.taint_rules else Analysis.const_rules
  in
  if dump_lattice then begin
    Fmt.pr "%a" Typequal.Lattice.Space.pp_dump rules.Analysis.qr_space;
    exit 0
  end;
  let name, input =
    match (files, bench) with
    | [ f ], _ -> (f, Single (f, read_file f))
    | _ :: _ :: _, _ ->
        (* multiple translation units: whole-program analysis by
           concatenation, in command-line order *)
        ( String.concat "+" files,
          Project (List.map (fun f -> (f, read_file f)) files) )
    | [], Some b -> (
        match List.assoc_opt b Cbench.Programs.all with
        | Some src -> (b, Single (b, src))
        | None when b = "miniproject" ->
            (b, Project Cbench.Programs.miniproject)
        | None -> (
            let find l =
              List.find_opt (fun (x : Cbench.Suite.bench) -> x.b_name = b) l
            in
            match find Cbench.Suite.table1 with
            | Some bb -> (b, Single (b, Cbench.Suite.source_of bb))
            | None -> (
                match
                  find (Cbench.Suite.scale @ Cbench.Suite.scale_smoke)
                with
                | Some bb -> (b, Project (Cbench.Suite.project_of bb))
                | None ->
                    Fmt.epr
                      "unknown benchmark %s; embedded: %a, miniproject; \
                       synthetic: %a@."
                      b
                      Fmt.(list ~sep:comma string)
                      (List.map fst Cbench.Programs.all)
                      Fmt.(list ~sep:comma string)
                      (List.map
                         (fun (x : Cbench.Suite.bench) -> x.b_name)
                         (Cbench.Suite.table1 @ Cbench.Suite.scale
                        @ Cbench.Suite.scale_smoke));
                    exit 2)))
    | [], None ->
        Fmt.epr "need a FILE or --bench NAME@.";
        exit 2
  in
  if flow then run_flow name (source_of_input input) insensitive
  else
    (* the rule-set identity the driver's fingerprints cannot derive:
       which analysis flavour and (for --lattice) which config built it.
       Any cache fault warns once on stderr and the run continues cold —
       cache trouble never changes the exit contract. *)
    let cache =
      match cache_dir with
      | None -> None
      | Some dir ->
          let opts_id =
            String.concat ":"
              [
                (match lattice with
                | Some path ->
                    "lattice=" ^ Digest.to_hex (Digest.string (read_file path))
                | None -> if taint then "taint" else "const");
                (match qual with Some q -> q | None -> "-");
              ]
          in
          Session.open_cache
            ~warn:(fun m -> Fmt.epr "warning: %s@." m)
            ~rules ~opts_id dir
    in
    let run_one =
      run_one ~rules ~positions ~stats ~budget ~jobs ~max_errors
        ~compact:(not no_compact) ~cache
        ~frontend:
          (if concat_frontend then Session.Concat else Session.Per_unit)
    in
    match
      let runs =
        match mode with
        | Some m -> [ run_one ~print_diags:true m name input ]
        | None ->
            let r1 = run_one ~print_diags:true Analysis.Mono name input in
            let r2 = run_one ~print_diags:false Analysis.Poly name input in
            [ r1; r2 ]
      in
      (match cache with
      | Some cs when stats ->
          Fmt.pr "cache: %a@." Typequal.Cache.pp_stats
            (Typequal.Cache.stats cs.Session.cs_cache)
      | _ -> ());
      let type_errors =
        List.fold_left
          (fun n r -> n + r.Session.results.Report.type_errors)
          0 runs
      in
      let bad_source =
        List.exists
          (fun r -> List.exists Cfront.Diag.is_error r.Session.diagnostics)
          runs
      in
      (type_errors, bad_source)
    with
    | _, true -> 2 (* the source did not fully parse *)
    | 0, false -> 0
    | _, false -> 1
    | exception Session.Error m ->
        Fmt.epr "error: %s@." m;
        2

open Cmdliner

let files =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FILE"
        ~doc:
          "C source file(s); several files are analyzed together as one \
           program (whole-program analysis over the concatenated \
           translation units)")

let bench =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"NAME" ~doc:"Analyze an embedded or synthetic benchmark")

let mode =
  let mode_conv =
    Arg.enum
      [
        ("mono", Analysis.Mono);
        ("poly", Analysis.Poly);
        ("polyrec", Analysis.Polyrec);
      ]
  in
  Arg.(
    value
    & opt (some mode_conv) None
    & info [ "mode" ] ~docv:"MODE" ~doc:"Run only one inference mode (mono|poly|polyrec)")

let positions =
  Arg.(value & flag & info [ "positions" ] ~doc:"Print every interesting position's verdict")

let taint =
  Arg.(
    value & flag
    & info [ "taint" ]
        ~doc:"Run the taint rules instead of const ($tainted/$untainted prototypes)")

let flow =
  Arg.(
    value & flag
    & info [ "flow" ]
        ~doc:"Run the flow-sensitive scalar taint analysis (Section 6 extension)")

let insensitive =
  Arg.(
    value & flag
    & info [ "insensitive" ]
        ~doc:"With --flow: use the flow-insensitive baseline")

let stats =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Print constraint-solver statistics (unifications, edge dedup, \
              cycle collapses, worklist pops)")

let budget =
  let budget_conv =
    Arg.conv
      ( (fun s ->
          match parse_budget_spec s with
          | Ok x -> Ok x
          | Error m -> Error (`Msg m)),
        fun ppf s ->
          let item k = function
            | Some n -> [ Printf.sprintf "%s=%d" k n ]
            | None -> []
          in
          Fmt.string ppf
            (String.concat ","
               (item "vars" s.bs_vars @ item "pops" s.bs_pops
              @ item "ms" s.bs_ms)) )
  in
  Arg.(
    value
    & opt (some budget_conv) None
    & info [ "budget" ] ~docv:"SPEC"
        ~doc:
          "Bound the analysis: $(b,vars=N) caps qualifier variables, \
           $(b,pops=N) caps solver worklist steps, $(b,ms=N) is a \
           wall-clock deadline; combine with commas. A bare integer means \
           $(b,pops=N). When the budget trips, the run still exits 0 but \
           every function is reported degraded and every position \
           could-be-either.")

let jobs =
  Arg.(
    value
    & opt int (Typequal.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Analysis worker domains. $(docv) > 1 runs the multicore engine \
           (wavefront over the function dependence graph for poly/polyrec, \
           per-function map-reduce for mono); results are identical to \
           $(docv) = 1. Defaults to \\$TYPEQUAL_JOBS or 1.")

let max_errors =
  Arg.(
    value & opt int 20
    & info [ "max-errors" ] ~docv:"N"
        ~doc:"Stop collecting lexer/parser diagnostics after $(docv)")

let no_compact =
  Arg.(
    value & flag
    & info [ "no-compact" ]
        ~doc:
          "Disable scheme compaction and instantiation memoization \
           (the ablation baseline). Reports are identical either way; \
           only constraint-system size and speed differ.")

let concat_frontend =
  Arg.(
    value & flag
    & info [ "concat-frontend" ]
        ~doc:
          "Parse multi-file projects by concatenating the translation units \
           into one program (the pre-per-unit pipeline, kept as a parity \
           oracle). Reports, diagnostics and counters are byte-identical to \
           the default per-unit frontend; only speed, memory, and AST-cache \
           granularity differ.")

let lattice =
  Arg.(
    value
    & opt (some string) None
    & info [ "lattice" ] ~docv:"FILE"
        ~doc:
          "Load a user-defined qualifier lattice from a CQual-style config \
           file and analyze with its generic declaration rules ($(b,\\$level) \
           on a declaration pins that pointer level; see the README for the \
           file format). The measured qualifier defaults to the first one \
           declared; override with $(b,--qual).")

let qual =
  Arg.(
    value
    & opt (some string) None
    & info [ "qual" ] ~docv:"NAME"
        ~doc:"With $(b,--lattice): the qualifier whose verdicts the report \
              counts")

let dump_lattice =
  Arg.(
    value & flag
    & info [ "dump-lattice" ]
        ~doc:
          "Print the active qualifier space (qualifiers, levels, order, bit \
           layout) and exit — for debugging custom lattice files")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Persist analysis results (parsed ASTs, per-SCC constraint \
           schemes, whole-run reports) under $(docv), and reuse any entry \
           whose full verification chain — format, version, lattice, \
           content hash, dependency interface hashes, payload checksum — \
           still holds. Anything else is re-inferred cold, so reports are \
           byte-identical with or without a cache. Safe under concurrent \
           invocations; cache I/O trouble warns once and the run continues \
           uncached. See $(b,--stats) for hit/miss/reject counts.")

let gc =
  Arg.(
    value
    & opt (some string) None
    & info [ "gc" ] ~docv:"SPEC"
        ~doc:
          "Tune the OCaml runtime for batch analysis: $(b,batch) applies the \
           benchmarked profile (4x-default minor heap, relaxed \
           space_overhead), \
           $(b,off) leaves the runtime alone, and a comma-separated \
           $(b,k=v) list (minor_heap_size, space_overhead, ...) sets \
           fields directly. Defaults to \\$TYPEQUAL_GC, else off. Purely a \
           speed/heap trade — reports and counters are unaffected.")

let cmd =
  let doc = "const inference for C (Foster, Fähndrich, Aiken — PLDI 1999)" in
  Cmd.v
    (Cmd.info "cqualc" ~doc)
    Term.(
      const main $ files $ bench $ mode $ positions $ taint $ flow $ insensitive
      $ stats $ budget $ jobs $ max_errors $ no_compact $ concat_frontend
      $ lattice $ qual $ dump_lattice $ cache_dir $ gc)

(* Last line of defense: whatever leaks out of the pipeline becomes a
   one-line message and exit 2 — users should never see a backtrace.
   Cmdliner's own CLI-error codes (124/125) are folded into 2 so the
   documented contract is just 0 / 1 / 2. *)
let () =
  exit
    (try
       match Cmd.eval' ~catch:false cmd with
       | (124 | 125) -> 2
       | code -> code
     with
    | Session.Error m | Cfront.Cprog.Frontend_error m ->
        Fmt.epr "error: %s@." m;
        2
    | Failure m ->
        Fmt.epr "error: %s@." m;
        2
    | Sys_error m ->
        Fmt.epr "error: %s@." m;
        2)
